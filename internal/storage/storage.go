// Package storage defines the backend abstraction MONARCH tiers are
// built from, plus concrete in-memory and on-disk implementations and
// instrumentation wrappers.
//
// A Backend is the paper's "storage backend" (the thing a storage
// driver wraps): a flat namespace of files addressed by slash-separated
// relative names. All methods take a context so that simulated backends
// can charge virtual time to the calling simulation process; real
// backends ignore it except for cancellation.
package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"monarch/internal/bufpool"
)

// Sentinel errors returned by backends. Wrap with %w so errors.Is works
// across instrumentation layers.
var (
	// ErrNotExist reports that the named file is absent.
	ErrNotExist = errors.New("storage: file does not exist")
	// ErrExist reports that the named file already exists.
	ErrExist = errors.New("storage: file already exists")
	// ErrNoSpace reports that a write would exceed the backend quota.
	ErrNoSpace = errors.New("storage: no space left on backend")
	// ErrReadOnly reports a mutation on a read-only backend.
	ErrReadOnly = errors.New("storage: backend is read-only")
)

// FileInfo describes one file in a backend namespace.
type FileInfo struct {
	Name string // slash-separated relative path
	Size int64  // bytes
}

// Backend is a flat file store. Implementations must be safe for
// concurrent use: MONARCH's placement thread pool writes while the
// framework reads.
type Backend interface {
	// Name identifies the backend in logs and stats ("ssd0", "lustre").
	Name() string
	// List returns every file, sorted by name.
	List(ctx context.Context) ([]FileInfo, error)
	// Stat returns metadata for one file.
	Stat(ctx context.Context, name string) (FileInfo, error)
	// ReadAt reads len(p) bytes at offset off; short reads at EOF return
	// the count read and io.EOF semantics are not used — n < len(p) with
	// nil error means the file ended.
	ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error)
	// ReadFile returns the whole content of name.
	ReadFile(ctx context.Context, name string) ([]byte, error)
	// WriteFile atomically creates or replaces name with data. Returns
	// ErrNoSpace if the quota would be exceeded.
	WriteFile(ctx context.Context, name string, data []byte) error
	// Remove deletes name, freeing its quota.
	Remove(ctx context.Context, name string) error
	// Capacity is the quota in bytes; 0 means unlimited.
	Capacity() int64
	// Used is the number of bytes currently stored.
	Used() int64
}

// RangeWriter is an optional Backend extension enabling chunked
// placement: a file is Allocated once at its final size (reserving
// quota and creating the name with unspecified contents), then filled
// by concurrent WriteAt calls. Readers may read any range that has
// already been written while other ranges are still in flight — this
// is what lets MONARCH serve partial hits mid-copy.
//
// Instrumentation wrappers (Faulty, Counting) forward these methods to
// the wrapped backend and return an error satisfying
// errors.Is(err, errors.ErrUnsupported) when it lacks them, so callers
// can fall back to whole-file WriteFile.
type RangeWriter interface {
	// Allocate reserves quota for name at size bytes and creates (or
	// replaces) it with unspecified contents. Returns ErrNoSpace when
	// the quota cannot accommodate the file.
	Allocate(ctx context.Context, name string, size int64) error
	// WriteAt writes len(p) bytes at offset off into a previously
	// Allocated file. Writes must stay within the allocated size; the
	// backend rejects writes past it so quota accounting stays exact.
	WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error)
}

// Releaser releases a borrowed resource. Implementations must be safe
// to call exactly once; Release after Release is a caller bug.
type Releaser interface {
	Release()
}

// View is a borrowed read-only window into a backend's bytes — the
// zero-copy result of ViewReader.ReadView. Data stays valid until
// Release is called and MUST NOT be written to or retained past
// Release; the backing store may be a shared in-memory buffer (MemFS,
// held under a per-file read lock) or a pooled scratch buffer (OSFS).
type View struct {
	// Data is the requested range. Its length may be shorter than the
	// requested byte count when the file ends first (same short-read
	// semantics as Backend.ReadAt).
	Data []byte
	// R releases the view; nil means there is nothing to release.
	R Releaser
}

// Release returns the view's resources. Call it exactly once, after
// the last access to Data.
func (v View) Release() {
	if v.R != nil {
		v.R.Release()
	}
}

// ViewReader is an optional Backend extension: a zero-copy read fast
// path. ReadView returns a borrowed window of up to n bytes of name at
// off, skipping the copy into a caller buffer that ReadAt requires.
// MONARCH's read path uses it to serve fully-placed tier-0 hits
// copy-free; backends that cannot lend stable bytes simply don't
// implement it and callers fall through to ReadAt.
//
// Contract: the caller must Release the returned view exactly once,
// promptly — MemFS holds the file's read lock for the view's lifetime,
// so an unreleased view blocks writers to that file forever.
type ViewReader interface {
	// ReadView returns up to n bytes of name at offset off. off < 0 or
	// a missing name fail; off at-or-past EOF returns an empty (but
	// releasable) view, mirroring ReadAt's short-read semantics.
	ReadView(ctx context.Context, name string, off, n int64) (View, error)
}

// pooledView releases a view's bufpool scratch buffer on Release. The
// releaser object itself is recycled through its own sync.Pool, so a
// buffered view costs zero allocations in steady state.
type pooledView struct{ buf []byte }

func (r *pooledView) Release() {
	bufpool.Put(r.buf)
	r.buf = nil
	pooledViews.Put(r)
}

var pooledViews = sync.Pool{New: func() any { return new(pooledView) }}

// PooledView wraps a bufpool buffer in a View lending its first used
// bytes; Release returns the buffer to bufpool. Shared by backends
// (OSFS) and callers (core's ReadView fallthrough) that materialize
// views out of pooled scratch.
func PooledView(buf []byte, used int) View {
	r := pooledViews.Get().(*pooledView)
	r.buf = buf
	return View{Data: buf[:used], R: r}
}

// Pinger is an optional Backend extension: a cheap liveness check that
// does not mutate the backend. Recovery probes prefer it over the
// default one-byte write probe — a networked tier (the peer cache) is
// read-only from the prober's point of view, so a write probe would
// report it alive without ever touching the wire.
type Pinger interface {
	// Ping reports nil when the backend is able to serve requests.
	Ping(ctx context.Context) error
}

// Copier is an optional Backend extension: a whole-file copy fast path.
// MONARCH's placement handler prefers it when the destination tier
// supports it — simulated stores use it to move files without
// materialising contents; real backends may use it to stream instead of
// buffering whole files.
type Copier interface {
	// CopyFrom copies name (fully) from src into the receiver.
	CopyFrom(ctx context.Context, src Backend, name string) error
}

// Free returns the available quota of b, or a very large number when the
// backend is unlimited.
func Free(b Backend) int64 {
	if b.Capacity() <= 0 {
		return int64(1) << 62
	}
	return b.Capacity() - b.Used()
}

// ValidateName rejects names that escape the backend namespace. Backends
// call it at every entry point.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty file name")
	}
	if name[0] == '/' {
		return fmt.Errorf("storage: absolute name %q", name)
	}
	// Reject path traversal; names are used as map keys and joined under
	// roots for osfs.
	for i := 0; i < len(name); i++ {
		if name[i] != '.' {
			continue
		}
		if (i == 0 || name[i-1] == '/') && i+1 < len(name) && name[i+1] == '.' &&
			(i+2 == len(name) || name[i+2] == '/') {
			return fmt.Errorf("storage: name %q contains parent traversal", name)
		}
	}
	return nil
}

// ReadRange is a helper implementing ReadAt semantics over an in-memory
// byte slice, shared by memfs and the simulated backends.
func ReadRange(data []byte, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

// context cancellation helper shared by real backends.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
