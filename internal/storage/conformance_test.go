package storage_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"monarch/internal/storage"
	"monarch/internal/storage/storagetest"
)

// backendFactories builds each Backend implementation fresh for the
// shared conformance suite (which lives in storagetest so other
// implementations — the peernet client in particular — run the same
// contract).
func backendFactories(t *testing.T) map[string]storagetest.Factory {
	return map[string]storagetest.Factory{
		"memfs": func(capacity int64) storage.Backend {
			return storage.NewMemFS("mem", capacity)
		},
		"osfs": func(capacity int64) storage.Backend {
			dir := t.TempDir()
			o, err := storage.NewOSFS("os", dir, capacity)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
	}
}

func TestBackendConformance(t *testing.T) {
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			storagetest.RunConformance(t, mk)
		})
	}
}

func TestBackendPropertyRoundtrip(t *testing.T) {
	ctx := context.Background()
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			b := mk(0)
			i := 0
			err := quick.Check(func(data []byte, off uint16) bool {
				i++
				name := fmt.Sprintf("file-%d", i)
				if err := b.WriteFile(ctx, name, data); err != nil {
					return false
				}
				got, err := b.ReadFile(ctx, name)
				if err != nil || !bytes.Equal(got, data) {
					return false
				}
				// Any ReadAt window must agree with the slice.
				o := int64(off) % (int64(len(data)) + 1)
				p := make([]byte, 16)
				n, err := b.ReadAt(ctx, name, p, o)
				if err != nil {
					return false
				}
				want := data[o:]
				if len(want) > 16 {
					want = want[:16]
				}
				return n == len(want) && bytes.Equal(p[:n], want)
			}, &quick.Config{MaxCount: 40})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestValidateName(t *testing.T) {
	valid := []string{"a", "a/b", "a.txt", "dir/.hidden", "a..b", "..a", "a.."}
	for _, n := range valid {
		if err := storage.ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	invalid := []string{"", "/a", "..", "../x", "a/..", "a/../b", "a/.."}
	for _, n := range invalid {
		if err := storage.ValidateName(n); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", n)
		}
	}
}

func TestReadRange(t *testing.T) {
	data := []byte("abcdef")
	p := make([]byte, 3)
	if n, err := storage.ReadRange(data, p, 0); n != 3 || err != nil || string(p) != "abc" {
		t.Fatalf("n=%d err=%v p=%q", n, err, p)
	}
	if n, _ := storage.ReadRange(data, p, 5); n != 1 || p[0] != 'f' {
		t.Fatalf("tail: n=%d", n)
	}
	if n, _ := storage.ReadRange(data, p, 6); n != 0 {
		t.Fatalf("at EOF: n=%d", n)
	}
	if _, err := storage.ReadRange(data, p, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestFree(t *testing.T) {
	b := storage.NewMemFS("m", 100)
	if err := b.WriteFile(context.Background(), "f", make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if storage.Free(b) != 70 {
		t.Fatalf("Free = %d", storage.Free(b))
	}
	unlimited := storage.NewMemFS("u", 0)
	if storage.Free(unlimited) < 1<<61 {
		t.Fatal("unlimited backend should report huge free space")
	}
}

func TestMemFSReadOnly(t *testing.T) {
	ctx := context.Background()
	m := storage.NewMemFS("pfs", 0)
	if err := m.WriteFile(ctx, "dataset", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.SetReadOnly(true)
	if err := m.WriteFile(ctx, "new", []byte("y")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write on read-only: %v", err)
	}
	if err := m.Remove(ctx, "dataset"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("remove on read-only: %v", err)
	}
	if _, err := m.ReadFile(ctx, "dataset"); err != nil {
		t.Fatalf("read on read-only must work: %v", err)
	}
}

func TestMemFSReadFileReturnsCopy(t *testing.T) {
	ctx := context.Background()
	m := storage.NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile(ctx, "f")
	got[0] = 'X'
	again, _ := m.ReadFile(ctx, "f")
	if string(again) != "abc" {
		t.Fatal("ReadFile exposed internal buffer")
	}
}

func TestMemFSWriteFileCopiesInput(t *testing.T) {
	ctx := context.Background()
	m := storage.NewMemFS("m", 0)
	buf := []byte("abc")
	if err := m.WriteFile(ctx, "f", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := m.ReadFile(ctx, "f")
	if string(got) != "abc" {
		t.Fatal("WriteFile aliased caller buffer")
	}
}

func TestOSFSRejectsMissingRoot(t *testing.T) {
	if _, err := storage.NewOSFS("x", "/definitely/not/here", 0); err == nil {
		t.Fatal("expected error for missing root")
	}
}

func TestOSFSCountsPreexistingFiles(t *testing.T) {
	dir := t.TempDir()
	seed, err := storage.NewOSFS("seed", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.WriteFile(context.Background(), "pre", make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	reopened, err := storage.NewOSFS("re", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Used() != 42 {
		t.Fatalf("used = %d, want 42", reopened.Used())
	}
}
