package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// backendFactories builds each Backend implementation fresh for the
// shared conformance suite.
func backendFactories(t *testing.T) map[string]func(capacity int64) Backend {
	return map[string]func(int64) Backend{
		"memfs": func(capacity int64) Backend {
			return NewMemFS("mem", capacity)
		},
		"osfs": func(capacity int64) Backend {
			dir := t.TempDir()
			o, err := NewOSFS("os", dir, capacity)
			if err != nil {
				t.Fatal(err)
			}
			return o
		},
	}
}

func TestBackendConformance(t *testing.T) {
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			runBackendConformance(t, mk)
		})
	}
}

func runBackendConformance(t *testing.T, mk func(int64) Backend) {
	ctx := context.Background()

	t.Run("WriteReadRoundtrip", func(t *testing.T) {
		b := mk(0)
		content := []byte("hello tier zero")
		if err := b.WriteFile(ctx, "a/b/file.rec", content); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile(ctx, "a/b/file.rec")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("roundtrip mismatch: %q", got)
		}
	})

	t.Run("ReadAtWindows", func(t *testing.T) {
		b := mk(0)
		content := []byte("0123456789")
		if err := b.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 4)
		n, err := b.ReadAt(ctx, "f", p, 3)
		if err != nil || n != 4 || string(p) != "3456" {
			t.Fatalf("mid read: n=%d err=%v p=%q", n, err, p)
		}
		n, err = b.ReadAt(ctx, "f", p, 8) // short read at EOF
		if err != nil || n != 2 || string(p[:n]) != "89" {
			t.Fatalf("tail read: n=%d err=%v p=%q", n, err, p[:n])
		}
		n, err = b.ReadAt(ctx, "f", p, 100) // past EOF
		if err != nil || n != 0 {
			t.Fatalf("past-EOF read: n=%d err=%v", n, err)
		}
	})

	t.Run("StatAndList", func(t *testing.T) {
		b := mk(0)
		if err := b.WriteFile(ctx, "z.rec", make([]byte, 7)); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteFile(ctx, "a.rec", make([]byte, 3)); err != nil {
			t.Fatal(err)
		}
		fi, err := b.Stat(ctx, "z.rec")
		if err != nil || fi.Size != 7 || fi.Name != "z.rec" {
			t.Fatalf("stat: %+v err=%v", fi, err)
		}
		infos, err := b.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 2 || infos[0].Name != "a.rec" || infos[1].Name != "z.rec" {
			t.Fatalf("list not sorted or wrong: %+v", infos)
		}
	})

	t.Run("MissingFileErrors", func(t *testing.T) {
		b := mk(0)
		if _, err := b.Stat(ctx, "ghost"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("stat ghost: %v", err)
		}
		if _, err := b.ReadFile(ctx, "ghost"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("read ghost: %v", err)
		}
		if _, err := b.ReadAt(ctx, "ghost", make([]byte, 1), 0); !errors.Is(err, ErrNotExist) {
			t.Fatalf("readat ghost: %v", err)
		}
		if err := b.Remove(ctx, "ghost"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("remove ghost: %v", err)
		}
	})

	t.Run("QuotaEnforcement", func(t *testing.T) {
		b := mk(10)
		if err := b.WriteFile(ctx, "small", make([]byte, 6)); err != nil {
			t.Fatal(err)
		}
		err := b.WriteFile(ctx, "big", make([]byte, 5))
		if !errors.Is(err, ErrNoSpace) {
			t.Fatalf("expected ErrNoSpace, got %v", err)
		}
		// Overwrite within quota must work: replacing 6 bytes with 9.
		if err := b.WriteFile(ctx, "small", make([]byte, 9)); err != nil {
			t.Fatalf("overwrite within quota: %v", err)
		}
		if b.Used() != 9 {
			t.Fatalf("used = %d, want 9", b.Used())
		}
	})

	t.Run("RemoveFreesQuota", func(t *testing.T) {
		b := mk(10)
		if err := b.WriteFile(ctx, "f", make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
		if err := b.Remove(ctx, "f"); err != nil {
			t.Fatal(err)
		}
		if b.Used() != 0 {
			t.Fatalf("used = %d after remove", b.Used())
		}
		if err := b.WriteFile(ctx, "g", make([]byte, 10)); err != nil {
			t.Fatalf("write after remove: %v", err)
		}
	})

	t.Run("NameValidation", func(t *testing.T) {
		b := mk(0)
		for _, bad := range []string{"", "/abs", "../escape", "a/../../b", ".."} {
			if err := b.WriteFile(ctx, bad, []byte("x")); err == nil {
				t.Errorf("write %q should fail", bad)
			}
			if _, err := b.ReadFile(ctx, bad); err == nil {
				t.Errorf("read %q should fail", bad)
			}
		}
		// Legitimate dotted names must pass.
		for _, good := range []string{"a.b", "dir/.hidden", "dir/..double", "x/y..z"} {
			if err := b.WriteFile(ctx, good, []byte("x")); err != nil {
				t.Errorf("write %q failed: %v", good, err)
			}
		}
	})

	t.Run("ConcurrentReadersAndWriters", func(t *testing.T) {
		b := mk(0)
		if err := b.WriteFile(ctx, "shared", bytes.Repeat([]byte{7}, 1024)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := make([]byte, 128)
				for j := 0; j < 50; j++ {
					if _, err := b.ReadAt(ctx, "shared", p, int64(j%8)*128); err != nil {
						t.Error(err)
						return
					}
					name := fmt.Sprintf("w-%d-%d", i, j)
					if err := b.WriteFile(ctx, name, p); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})

	t.Run("CanceledContext", func(t *testing.T) {
		b := mk(0)
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := b.WriteFile(cctx, "f", []byte("x")); !errors.Is(err, context.Canceled) {
			t.Fatalf("write with canceled ctx: %v", err)
		}
		if _, err := b.List(cctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("list with canceled ctx: %v", err)
		}
	})
}

func TestBackendPropertyRoundtrip(t *testing.T) {
	ctx := context.Background()
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			b := mk(0)
			i := 0
			err := quick.Check(func(data []byte, off uint16) bool {
				i++
				name := fmt.Sprintf("file-%d", i)
				if err := b.WriteFile(ctx, name, data); err != nil {
					return false
				}
				got, err := b.ReadFile(ctx, name)
				if err != nil || !bytes.Equal(got, data) {
					return false
				}
				// Any ReadAt window must agree with the slice.
				o := int64(off) % (int64(len(data)) + 1)
				p := make([]byte, 16)
				n, err := b.ReadAt(ctx, name, p, o)
				if err != nil {
					return false
				}
				want := data[o:]
				if len(want) > 16 {
					want = want[:16]
				}
				return n == len(want) && bytes.Equal(p[:n], want)
			}, &quick.Config{MaxCount: 40})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestValidateName(t *testing.T) {
	valid := []string{"a", "a/b", "a.txt", "dir/.hidden", "a..b", "..a", "a.."}
	for _, n := range valid {
		if err := ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	invalid := []string{"", "/a", "..", "../x", "a/..", "a/../b", "a/.."}
	for _, n := range invalid {
		if err := ValidateName(n); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", n)
		}
	}
}

func TestReadRange(t *testing.T) {
	data := []byte("abcdef")
	p := make([]byte, 3)
	if n, err := ReadRange(data, p, 0); n != 3 || err != nil || string(p) != "abc" {
		t.Fatalf("n=%d err=%v p=%q", n, err, p)
	}
	if n, _ := ReadRange(data, p, 5); n != 1 || p[0] != 'f' {
		t.Fatalf("tail: n=%d", n)
	}
	if n, _ := ReadRange(data, p, 6); n != 0 {
		t.Fatalf("at EOF: n=%d", n)
	}
	if _, err := ReadRange(data, p, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestFree(t *testing.T) {
	b := NewMemFS("m", 100)
	if err := b.WriteFile(context.Background(), "f", make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if Free(b) != 70 {
		t.Fatalf("Free = %d", Free(b))
	}
	unlimited := NewMemFS("u", 0)
	if Free(unlimited) < 1<<61 {
		t.Fatal("unlimited backend should report huge free space")
	}
}

func TestMemFSReadOnly(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("pfs", 0)
	if err := m.WriteFile(ctx, "dataset", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.SetReadOnly(true)
	if err := m.WriteFile(ctx, "new", []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on read-only: %v", err)
	}
	if err := m.Remove(ctx, "dataset"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("remove on read-only: %v", err)
	}
	if _, err := m.ReadFile(ctx, "dataset"); err != nil {
		t.Fatalf("read on read-only must work: %v", err)
	}
}

func TestMemFSReadFileReturnsCopy(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile(ctx, "f")
	got[0] = 'X'
	again, _ := m.ReadFile(ctx, "f")
	if string(again) != "abc" {
		t.Fatal("ReadFile exposed internal buffer")
	}
}

func TestMemFSWriteFileCopiesInput(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	buf := []byte("abc")
	if err := m.WriteFile(ctx, "f", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := m.ReadFile(ctx, "f")
	if string(got) != "abc" {
		t.Fatal("WriteFile aliased caller buffer")
	}
}

func TestOSFSRejectsMissingRoot(t *testing.T) {
	if _, err := NewOSFS("x", "/definitely/not/here", 0); err == nil {
		t.Fatal("expected error for missing root")
	}
}

func TestOSFSCountsPreexistingFiles(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewOSFS("seed", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.WriteFile(context.Background(), "pre", make([]byte, 42)); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewOSFS("re", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Used() != 42 {
		t.Fatalf("used = %d, want 42", reopened.Used())
	}
}
