package storage

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"monarch/internal/obs"
)

// OpKind enumerates the operation classes the counters distinguish.
type OpKind int

// Operation classes counted by Counting.
const (
	OpList OpKind = iota
	OpStat
	OpRead // ReadAt and ReadFile
	OpWrite
	OpRemove
	opKinds
)

// String names the operation class.
func (k OpKind) String() string {
	switch k {
	case OpList:
		return "list"
	case OpStat:
		return "stat"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// OpCounts is a snapshot of a Counting wrapper's totals.
type OpCounts struct {
	Ops          [5]int64 // indexed by OpKind
	BytesRead    int64
	BytesWritten int64
}

// Total returns the total operation count across all classes.
func (c OpCounts) Total() int64 {
	var t int64
	for _, v := range c.Ops {
		t += v
	}
	return t
}

// DataOps returns read + write operation counts — the paper's
// "I/O operations submitted to the shared file system".
func (c OpCounts) DataOps() int64 { return c.Ops[OpRead] + c.Ops[OpWrite] }

// MetadataOps returns list + stat counts.
func (c OpCounts) MetadataOps() int64 { return c.Ops[OpList] + c.Ops[OpStat] }

// Counting wraps a Backend and counts every operation and byte moved.
// It is how the experiments measure "I/O pressure on the PFS". Counting
// is safe for concurrent use.
type Counting struct {
	Backend
	ops          [opKinds]atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// NewCounting wraps b.
func NewCounting(b Backend) *Counting { return &Counting{Backend: b} }

// Counts returns a consistent-enough snapshot of the totals.
func (c *Counting) Counts() OpCounts {
	var s OpCounts
	for i := range c.ops {
		s.Ops[i] = c.ops[i].Load()
	}
	s.BytesRead = c.bytesRead.Load()
	s.BytesWritten = c.bytesWritten.Load()
	return s
}

// Reset zeroes all counters.
func (c *Counting) Reset() {
	for i := range c.ops {
		c.ops[i].Store(0)
	}
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
}

// Instrument implements obs.Instrumentable: it registers func-backed
// counters that read the wrapper's live totals, so the registry view
// and Counts() can never disagree (and Reset keeps working — the funcs
// simply observe the zeroed atomics). The extra labels identify the
// instance; core passes the hierarchy tier. Registering the same
// wrapper into the same registry twice panics (duplicate series).
func (c *Counting) Instrument(r *obs.Registry, labels ...Label) {
	base := append([]Label{obs.L("backend", c.Backend.Name())}, labels...)
	for k := OpKind(0); k < opKinds; k++ {
		ctr := &c.ops[k]
		r.CounterFunc("monarch_backend_ops_total",
			"Operations issued to a storage backend, by operation class.",
			ctr.Load, append(append([]Label(nil), base...), obs.L("op", k.String()))...)
	}
	r.CounterFunc("monarch_backend_read_bytes_total",
		"Bytes read from a storage backend.", c.bytesRead.Load, base...)
	r.CounterFunc("monarch_backend_write_bytes_total",
		"Bytes written to a storage backend.", c.bytesWritten.Load, base...)
}

// Label aliases obs.Label so callers can pass instance labels without
// importing obs directly.
type Label = obs.Label

// List implements Backend.
func (c *Counting) List(ctx context.Context) ([]FileInfo, error) {
	c.ops[OpList].Add(1)
	return c.Backend.List(ctx)
}

// Stat implements Backend.
func (c *Counting) Stat(ctx context.Context, name string) (FileInfo, error) {
	c.ops[OpStat].Add(1)
	return c.Backend.Stat(ctx, name)
}

// ReadAt implements Backend.
func (c *Counting) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	c.ops[OpRead].Add(1)
	n, err := c.Backend.ReadAt(ctx, name, p, off)
	c.bytesRead.Add(int64(n))
	return n, err
}

// ReadView implements ViewReader when the wrapped backend does; a view
// counts as one read op for however many bytes it lends. (Faulty
// deliberately does not forward ReadView, so injected read faults can
// never be bypassed by the zero-copy path.)
func (c *Counting) ReadView(ctx context.Context, name string, off, n int64) (View, error) {
	vr, ok := c.Backend.(ViewReader)
	if !ok {
		return View{}, fmt.Errorf("%s: read %q: %w", c.Backend.Name(), name, errors.ErrUnsupported)
	}
	c.ops[OpRead].Add(1)
	v, err := vr.ReadView(ctx, name, off, n)
	c.bytesRead.Add(int64(len(v.Data)))
	return v, err
}

// ReadFile implements Backend.
func (c *Counting) ReadFile(ctx context.Context, name string) ([]byte, error) {
	c.ops[OpRead].Add(1)
	data, err := c.Backend.ReadFile(ctx, name)
	c.bytesRead.Add(int64(len(data)))
	return data, err
}

// WriteFile implements Backend.
func (c *Counting) WriteFile(ctx context.Context, name string, data []byte) error {
	c.ops[OpWrite].Add(1)
	err := c.Backend.WriteFile(ctx, name, data)
	if err == nil {
		c.bytesWritten.Add(int64(len(data)))
	}
	return err
}

// Remove implements Backend.
func (c *Counting) Remove(ctx context.Context, name string) error {
	c.ops[OpRemove].Add(1)
	return c.Backend.Remove(ctx, name)
}

// Allocate implements RangeWriter when the wrapped backend does; the
// allocation counts as a write op (no bytes moved yet).
func (c *Counting) Allocate(ctx context.Context, name string, size int64) error {
	rw, ok := c.Backend.(RangeWriter)
	if !ok {
		return fmt.Errorf("%s: allocate %q: %w", c.Backend.Name(), name, errors.ErrUnsupported)
	}
	c.ops[OpWrite].Add(1)
	return rw.Allocate(ctx, name, size)
}

// WriteAt implements RangeWriter when the wrapped backend does.
func (c *Counting) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	rw, ok := c.Backend.(RangeWriter)
	if !ok {
		return 0, fmt.Errorf("%s: write %q: %w", c.Backend.Name(), name, errors.ErrUnsupported)
	}
	c.ops[OpWrite].Add(1)
	n, err := rw.WriteAt(ctx, name, p, off)
	c.bytesWritten.Add(int64(n))
	return n, err
}
