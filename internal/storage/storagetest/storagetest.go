// Package storagetest exports the storage.Backend conformance suite so
// every implementation — in-tree (MemFS, OSFS) and out-of-tree (the
// peernet client, which serves the same interface over a wire) — is
// held to one contract. Tests construct backends through a factory so
// each subtest gets a fresh store at a chosen capacity.
package storagetest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"monarch/internal/storage"
)

// Factory builds a fresh backend with the given capacity (0 =
// unlimited) for one subtest.
type Factory func(capacity int64) storage.Backend

// RunConformance drives the base Backend contract against mk: roundtrip
// fidelity, ReadAt window semantics, sorted listings, sentinel errors,
// quota accounting, name validation, concurrency safety and context
// cancellation.
func RunConformance(t *testing.T, mk Factory) {
	ctx := context.Background()

	t.Run("WriteReadRoundtrip", func(t *testing.T) {
		b := mk(0)
		content := []byte("hello tier zero")
		if err := b.WriteFile(ctx, "a/b/file.rec", content); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile(ctx, "a/b/file.rec")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("roundtrip mismatch: %q", got)
		}
	})

	t.Run("ReadAtWindows", func(t *testing.T) {
		b := mk(0)
		content := []byte("0123456789")
		if err := b.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 4)
		n, err := b.ReadAt(ctx, "f", p, 3)
		if err != nil || n != 4 || string(p) != "3456" {
			t.Fatalf("mid read: n=%d err=%v p=%q", n, err, p)
		}
		n, err = b.ReadAt(ctx, "f", p, 8) // short read at EOF
		if err != nil || n != 2 || string(p[:n]) != "89" {
			t.Fatalf("tail read: n=%d err=%v p=%q", n, err, p[:n])
		}
		n, err = b.ReadAt(ctx, "f", p, 100) // past EOF
		if err != nil || n != 0 {
			t.Fatalf("past-EOF read: n=%d err=%v", n, err)
		}
	})

	t.Run("StatAndList", func(t *testing.T) {
		b := mk(0)
		if err := b.WriteFile(ctx, "z.rec", make([]byte, 7)); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteFile(ctx, "a.rec", make([]byte, 3)); err != nil {
			t.Fatal(err)
		}
		fi, err := b.Stat(ctx, "z.rec")
		if err != nil || fi.Size != 7 || fi.Name != "z.rec" {
			t.Fatalf("stat: %+v err=%v", fi, err)
		}
		infos, err := b.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 2 || infos[0].Name != "a.rec" || infos[1].Name != "z.rec" {
			t.Fatalf("list not sorted or wrong: %+v", infos)
		}
	})

	t.Run("MissingFileErrors", func(t *testing.T) {
		b := mk(0)
		if _, err := b.Stat(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("stat ghost: %v", err)
		}
		if _, err := b.ReadFile(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("read ghost: %v", err)
		}
		if _, err := b.ReadAt(ctx, "ghost", make([]byte, 1), 0); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("readat ghost: %v", err)
		}
		if err := b.Remove(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("remove ghost: %v", err)
		}
	})

	t.Run("QuotaEnforcement", func(t *testing.T) {
		b := mk(10)
		if err := b.WriteFile(ctx, "small", make([]byte, 6)); err != nil {
			t.Fatal(err)
		}
		err := b.WriteFile(ctx, "big", make([]byte, 5))
		if !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("expected ErrNoSpace, got %v", err)
		}
		// Overwrite within quota must work: replacing 6 bytes with 9.
		if err := b.WriteFile(ctx, "small", make([]byte, 9)); err != nil {
			t.Fatalf("overwrite within quota: %v", err)
		}
		if b.Used() != 9 {
			t.Fatalf("used = %d, want 9", b.Used())
		}
	})

	t.Run("RemoveFreesQuota", func(t *testing.T) {
		b := mk(10)
		if err := b.WriteFile(ctx, "f", make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
		if err := b.Remove(ctx, "f"); err != nil {
			t.Fatal(err)
		}
		if b.Used() != 0 {
			t.Fatalf("used = %d after remove", b.Used())
		}
		if err := b.WriteFile(ctx, "g", make([]byte, 10)); err != nil {
			t.Fatalf("write after remove: %v", err)
		}
	})

	t.Run("NameValidation", func(t *testing.T) {
		b := mk(0)
		for _, bad := range []string{"", "/abs", "../escape", "a/../../b", ".."} {
			if err := b.WriteFile(ctx, bad, []byte("x")); err == nil {
				t.Errorf("write %q should fail", bad)
			}
			if _, err := b.ReadFile(ctx, bad); err == nil {
				t.Errorf("read %q should fail", bad)
			}
		}
		// Legitimate dotted names must pass.
		for _, good := range []string{"a.b", "dir/.hidden", "dir/..double", "x/y..z"} {
			if err := b.WriteFile(ctx, good, []byte("x")); err != nil {
				t.Errorf("write %q failed: %v", good, err)
			}
		}
	})

	t.Run("ConcurrentReadersAndWriters", func(t *testing.T) {
		b := mk(0)
		if err := b.WriteFile(ctx, "shared", bytes.Repeat([]byte{7}, 1024)); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := make([]byte, 128)
				for j := 0; j < 50; j++ {
					if _, err := b.ReadAt(ctx, "shared", p, int64(j%8)*128); err != nil {
						t.Error(err)
						return
					}
					name := fmt.Sprintf("w-%d-%d", i, j)
					if err := b.WriteFile(ctx, name, p); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	})

	t.Run("CanceledContext", func(t *testing.T) {
		b := mk(0)
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := b.WriteFile(cctx, "f", []byte("x")); !errors.Is(err, context.Canceled) {
			t.Fatalf("write with canceled ctx: %v", err)
		}
		if _, err := b.List(cctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("list with canceled ctx: %v", err)
		}
	})
}

// RunRangeWriterConformance drives the Allocate/WriteAt contract against
// every backend mk produces; each must implement storage.RangeWriter.
// Chunked placement depends on these semantics: reserve-then-fill quota
// accounting, in-bounds enforcement, and readers seeing written ranges
// mid-copy.
func RunRangeWriterConformance(t *testing.T, mk Factory) {
	ctx := context.Background()
	asRW := func(t *testing.T, b storage.Backend) storage.RangeWriter {
		t.Helper()
		rw, ok := b.(storage.RangeWriter)
		if !ok {
			t.Fatalf("%s does not implement RangeWriter", b.Name())
		}
		return rw
	}

	t.Run("AllocateReservesQuotaAndZeroFills", func(t *testing.T) {
		b := mk(100)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "f", 64); err != nil {
			t.Fatal(err)
		}
		if got := b.Used(); got != 64 {
			t.Fatalf("used = %d after allocate, want 64", got)
		}
		fi, err := b.Stat(ctx, "f")
		if err != nil || fi.Size != 64 {
			t.Fatalf("stat: %+v err=%v, want size 64", fi, err)
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, make([]byte, 64)) {
			t.Fatalf("allocated file not zero-filled: %v", data)
		}
	})

	t.Run("AllocateOverQuota", func(t *testing.T) {
		b := mk(10)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "big", 11); !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("over-quota allocate: %v, want ErrNoSpace", err)
		}
		if got := b.Used(); got != 0 {
			t.Fatalf("failed allocate leaked quota: used = %d", got)
		}
	})

	t.Run("AllocateNegativeSize", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if err := rw.Allocate(ctx, "f", -1); err == nil {
			t.Fatal("negative-size allocate succeeded")
		}
	})

	t.Run("AllocateReplacesExisting", func(t *testing.T) {
		b := mk(100)
		rw := asRW(t, b)
		if err := b.WriteFile(ctx, "f", make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
		if err := rw.Allocate(ctx, "f", 16); err != nil {
			t.Fatal(err)
		}
		if got := b.Used(); got != 16 {
			t.Fatalf("used = %d after re-allocate, want 16", got)
		}
	})

	t.Run("WriteAtFillsRanges", func(t *testing.T) {
		b := mk(0)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "f", 10); err != nil {
			t.Fatal(err)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("456"), 4); err != nil || n != 3 {
			t.Fatalf("writeat: n=%d err=%v", n, err)
		}
		// The written range is readable while the rest is still zero —
		// the mid-copy read-through contract.
		p := make([]byte, 3)
		if n, err := b.ReadAt(ctx, "f", p, 4); err != nil || n != 3 || string(p) != "456" {
			t.Fatalf("mid-copy read: n=%d err=%v p=%q", n, err, p)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("0123"), 0); err != nil || n != 4 {
			t.Fatalf("writeat head: n=%d err=%v", n, err)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("789"), 7); err != nil || n != 3 {
			t.Fatalf("writeat tail: n=%d err=%v", n, err)
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil || string(data) != "0123456789" {
			t.Fatalf("assembled file = %q err=%v", data, err)
		}
		if got := b.Used(); got != 10 {
			t.Fatalf("used = %d after fills, want 10 (WriteAt must not re-charge quota)", got)
		}
	})

	t.Run("WriteAtMissingFile", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if _, err := rw.WriteAt(ctx, "ghost", []byte("x"), 0); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("writeat ghost: %v, want ErrNotExist", err)
		}
	})

	t.Run("WriteAtOutOfBounds", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if err := rw.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		if _, err := rw.WriteAt(ctx, "f", []byte("xx"), 7); err == nil {
			t.Fatal("write past allocated size succeeded")
		}
		if _, err := rw.WriteAt(ctx, "f", []byte("x"), -1); err == nil {
			t.Fatal("negative-offset write succeeded")
		}
	})

	t.Run("ConcurrentChunkFill", func(t *testing.T) {
		b := mk(0)
		rw := asRW(t, b)
		const chunk, nchunks = 128, 16
		want := make([]byte, chunk*nchunks)
		for i := range want {
			want[i] = byte(i * 31)
		}
		if err := rw.Allocate(ctx, "f", int64(len(want))); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errc := make(chan error, nchunks)
		for i := 0; i < nchunks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				off := int64(i * chunk)
				_, err := rw.WriteAt(ctx, "f", want[off:off+chunk], off)
				errc <- err
			}(i)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil || !bytes.Equal(data, want) {
			t.Fatalf("concurrent fill mismatch (err=%v)", err)
		}
	})

	t.Run("ContextCancelled", func(t *testing.T) {
		rw := asRW(t, mk(0))
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := rw.Allocate(cctx, "f", 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("allocate with cancelled ctx: %v", err)
		}
	})
}

// RunViewReaderConformance drives the zero-copy ViewReader contract
// against mk: agreement with ReadAt over arbitrary windows, short
// reads at EOF, sentinel errors, rejection of negative ranges, and
// release safety (a released view's buffer may be recycled, so the
// suite never touches Data after Release).
func RunViewReaderConformance(t *testing.T, mk Factory) {
	ctx := context.Background()
	asVR := func(t *testing.T, b storage.Backend) storage.ViewReader {
		t.Helper()
		vr, ok := b.(storage.ViewReader)
		if !ok {
			t.Fatalf("%T does not implement storage.ViewReader", b)
		}
		return vr
	}

	t.Run("AgreesWithReadAt", func(t *testing.T) {
		b := mk(0)
		vr := asVR(t, b)
		content := make([]byte, 1000)
		for i := range content {
			content[i] = byte(i*13 + 7)
		}
		if err := b.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		for _, w := range []struct{ off, n int64 }{
			{0, 1000}, {0, 10}, {500, 250}, {990, 100}, {1000, 4}, {2000, 4}, {7, 0},
		} {
			v, err := vr.ReadView(ctx, "f", w.off, w.n)
			if err != nil {
				t.Fatalf("ReadView(%d,%d): %v", w.off, w.n, err)
			}
			p := make([]byte, w.n)
			n, err := b.ReadAt(ctx, "f", p, w.off)
			if err != nil {
				t.Fatalf("ReadAt(%d,%d): %v", w.off, w.n, err)
			}
			if int64(len(v.Data)) > w.n {
				t.Fatalf("ReadView(%d,%d): %d bytes, more than asked", w.off, w.n, len(v.Data))
			}
			if len(v.Data) != n || !bytes.Equal(v.Data, p[:n]) {
				t.Fatalf("ReadView(%d,%d) = %d bytes, ReadAt = %d; content equal=%v",
					w.off, w.n, len(v.Data), n, bytes.Equal(v.Data, p[:n]))
			}
			v.Release()
		}
	})

	t.Run("MissingFile", func(t *testing.T) {
		vr := asVR(t, mk(0))
		if _, err := vr.ReadView(ctx, "nope", 0, 4); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("missing file: %v", err)
		}
	})

	t.Run("NegativeRanges", func(t *testing.T) {
		b := mk(0)
		vr := asVR(t, b)
		if err := b.WriteFile(ctx, "f", []byte("abc")); err != nil {
			t.Fatal(err)
		}
		if _, err := vr.ReadView(ctx, "f", -1, 4); err == nil {
			t.Fatal("negative offset accepted")
		}
		if _, err := vr.ReadView(ctx, "f", 0, -4); err == nil {
			t.Fatal("negative length accepted")
		}
	})

	t.Run("ConcurrentViews", func(t *testing.T) {
		b := mk(0)
		vr := asVR(t, b)
		content := bytes.Repeat([]byte{0xA5}, 4096)
		if err := b.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					v, err := vr.ReadView(ctx, "f", 0, 4096)
					if err != nil {
						t.Errorf("ReadView: %v", err)
						return
					}
					if len(v.Data) != 4096 || v.Data[0] != 0xA5 || v.Data[4095] != 0xA5 {
						t.Errorf("view content wrong")
						v.Release()
						return
					}
					v.Release()
				}
			}()
		}
		wg.Wait()
	})

	t.Run("WriteThenView", func(t *testing.T) {
		// A view taken after WriteFile replaced the content must see
		// the new bytes (the OSFS descriptor cache invalidates on the
		// rename-over).
		b := mk(0)
		vr := asVR(t, b)
		if err := b.WriteFile(ctx, "f", []byte("old-old-old")); err != nil {
			t.Fatal(err)
		}
		v, err := vr.ReadView(ctx, "f", 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
		if err := b.WriteFile(ctx, "f", []byte("new-new-new")); err != nil {
			t.Fatal(err)
		}
		v, err = vr.ReadView(ctx, "f", 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		got := string(v.Data)
		v.Release()
		if got != "new-new-new" {
			t.Fatalf("view after rewrite = %q", got)
		}
	})
}

// RunWriteConformance drives the write-lifecycle contract the core
// write path (Monarch.Create/WriteAt/Flush/Remove and journal
// recovery) leans on, beyond the base RangeWriter semantics:
// flush-style whole-file overwrites of allocated files, journal-replay
// idempotence, remove-then-recreate quota hygiene, and range writes
// into files that already exist with content.
func RunWriteConformance(t *testing.T, mk Factory) {
	ctx := context.Background()
	// Whole-file backends (the peernet client: no ALLOC/WRITEAT wire
	// ops) run the lifecycle and sentinel subtests; range subtests skip.
	asRW := func(t *testing.T, b storage.Backend) storage.RangeWriter {
		t.Helper()
		rw, ok := b.(storage.RangeWriter)
		if !ok {
			t.Skipf("%s does not implement RangeWriter; range subtests skipped", b.Name())
		}
		return rw
	}

	t.Run("WholeFileLifecycle", func(t *testing.T) {
		// WriteFile → overwrite → Remove → recreate, the shapes the
		// flusher and Monarch.Remove drive against the PFS; needs only
		// the base Backend contract so every write target runs it.
		b := mk(64)
		if err := b.WriteFile(ctx, "ckpt", bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
		next := bytes.Repeat([]byte{2}, 48)
		if err := b.WriteFile(ctx, "ckpt", next); err != nil {
			t.Fatalf("overwrite at quota edge: %v", err)
		}
		got, err := b.ReadFile(ctx, "ckpt")
		if err != nil || !bytes.Equal(got, next) {
			t.Fatalf("post-overwrite content: %v err=%v", got, err)
		}
		if b.Used() != 48 {
			t.Fatalf("used = %d after shrink-overwrite, want 48", b.Used())
		}
		if err := b.Remove(ctx, "ckpt"); err != nil {
			t.Fatal(err)
		}
		if err := b.Remove(ctx, "ckpt"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("double remove: %v, want ErrNotExist", err)
		}
		if err := b.WriteFile(ctx, "ckpt", bytes.Repeat([]byte{3}, 64)); err != nil {
			t.Fatalf("recreate after remove: %v", err)
		}
	})

	t.Run("FlushOverwritesAllocation", func(t *testing.T) {
		// The flusher does WriteFile over a name that may exist on the
		// PFS from an earlier flush (or from recovery's Allocate): the
		// overwrite must replace content and re-settle quota.
		b := mk(100)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "ckpt", 40); err != nil {
			t.Fatal(err)
		}
		if _, err := rw.WriteAt(ctx, "ckpt", []byte("old!"), 0); err != nil {
			t.Fatal(err)
		}
		flushed := bytes.Repeat([]byte{0xF1}, 24)
		if err := b.WriteFile(ctx, "ckpt", flushed); err != nil {
			t.Fatalf("flush-style overwrite: %v", err)
		}
		got, err := b.ReadFile(ctx, "ckpt")
		if err != nil || !bytes.Equal(got, flushed) {
			t.Fatalf("post-flush content: %q err=%v", got, err)
		}
		if b.Used() != 24 {
			t.Fatalf("used = %d after shrink-overwrite, want 24", b.Used())
		}
	})

	t.Run("ReplayIdempotence", func(t *testing.T) {
		// Journal recovery may re-apply a write the previous process
		// already landed; the double apply must be byte-neutral.
		b := mk(0)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "f", 16); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := rw.WriteAt(ctx, "f", []byte("abcd"), 4); err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
		}
		want := append(append(make([]byte, 4), []byte("abcd")...), make([]byte, 8)...)
		got, err := b.ReadFile(ctx, "f")
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("content after double apply: %v err=%v", got, err)
		}
		if b.Used() != 16 {
			t.Fatalf("used = %d, want 16 (replay must not re-charge)", b.Used())
		}
	})

	t.Run("RemoveThenRecreate", func(t *testing.T) {
		b := mk(64)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "tmp", 64); err != nil {
			t.Fatal(err)
		}
		if err := b.Remove(ctx, "tmp"); err != nil {
			t.Fatal(err)
		}
		if b.Used() != 0 {
			t.Fatalf("used = %d after remove", b.Used())
		}
		// The freed quota admits a fresh allocation under the same name.
		if err := rw.Allocate(ctx, "tmp", 64); err != nil {
			t.Fatalf("re-allocate after remove: %v", err)
		}
		if _, err := rw.WriteAt(ctx, "tmp", []byte("new"), 0); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadAt(ctx, "tmp", make([]byte, 3), 0)
		if err != nil || got != 3 {
			t.Fatalf("read recreated file: n=%d err=%v", got, err)
		}
	})

	t.Run("RangeWriteIntoExistingContent", func(t *testing.T) {
		// Recovery WriteAts into a file the PFS already holds (a flush
		// landed before the crash): untouched bytes must survive.
		b := mk(0)
		rw := asRW(t, b)
		if err := b.WriteFile(ctx, "f", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		if _, err := rw.WriteAt(ctx, "f", []byte("XY"), 4); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile(ctx, "f")
		if err != nil || string(got) != "0123XY6789" {
			t.Fatalf("partial overwrite: %q err=%v", got, err)
		}
	})

	t.Run("SentinelsSurviveWrappers", func(t *testing.T) {
		// The write path branches on these sentinels (errors.Is), so any
		// wrapper or wire hop in the factory chain must preserve them.
		b := mk(8)
		if err := b.Remove(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("remove ghost: %v, want ErrNotExist", err)
		}
		if err := b.WriteFile(ctx, "big", make([]byte, 9)); !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("over-quota write: %v, want ErrNoSpace", err)
		}
		rw := asRW(t, b)
		if _, err := rw.WriteAt(ctx, "ghost", []byte("x"), 0); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("writeat ghost: %v, want ErrNotExist", err)
		}
		if err := rw.Allocate(ctx, "big2", 9); !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("over-quota allocate: %v, want ErrNoSpace", err)
		}
	})
}
