package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// OSFS is a Backend rooted at a real directory. It is what a production
// deployment would point at an XFS mount on the compute node's SSD and
// at the dataset directory on the PFS.
type OSFS struct {
	name     string
	root     string
	capacity int64

	mu   sync.Mutex
	used int64
}

// NewOSFS creates a backend rooted at dir, which must exist. The quota
// (capacity 0 = unlimited) is enforced against bytes written through
// this backend plus whatever List finds at construction time.
func NewOSFS(name, dir string, capacity int64) (*OSFS, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("osfs %s: %w", name, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("osfs %s: %s is not a directory", name, dir)
	}
	o := &OSFS{name: name, root: dir, capacity: capacity}
	infos, err := o.List(context.Background())
	if err != nil {
		return nil, err
	}
	for _, fi := range infos {
		o.used += fi.Size
	}
	return o, nil
}

// Name implements Backend.
func (o *OSFS) Name() string { return o.name }

// Root returns the directory this backend is rooted at.
func (o *OSFS) Root() string { return o.root }

// Capacity implements Backend.
func (o *OSFS) Capacity() int64 { return o.capacity }

// Used implements Backend.
func (o *OSFS) Used() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.used
}

func (o *OSFS) path(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	return filepath.Join(o.root, filepath.FromSlash(name)), nil
}

// List implements Backend by walking the root recursively.
func (o *OSFS) List(ctx context.Context) ([]FileInfo, error) {
	var infos []FileInfo
	err := filepath.WalkDir(o.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctxErr(ctx); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(o.root, path)
		if err != nil {
			return err
		}
		infos = append(infos, FileInfo{Name: filepath.ToSlash(rel), Size: fi.Size()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("osfs %s: list: %w", o.name, err)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Stat implements Backend.
func (o *OSFS) Stat(ctx context.Context, name string) (FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return FileInfo{}, err
	}
	path, err := o.path(name)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return FileInfo{}, fmt.Errorf("%s: stat %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: name, Size: fi.Size()}, nil
}

// ReadAt implements Backend.
func (o *OSFS) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	path, err := o.path(name)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%s: read %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := f.ReadAt(p, off)
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// ReadFile implements Backend.
func (o *OSFS) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	path, err := o.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%s: read %q: %w", o.name, name, ErrNotExist)
	}
	return data, err
}

// WriteFile implements Backend. The write is atomic: data lands in a
// temp file first and is renamed into place, so concurrent readers
// never observe a torn file.
func (o *OSFS) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}

	o.mu.Lock()
	var old int64
	if fi, err := os.Stat(path); err == nil {
		old = fi.Size()
	}
	newUsed := o.used - old + int64(len(data))
	if o.capacity > 0 && newUsed > o.capacity {
		o.mu.Unlock()
		return fmt.Errorf("%s: write %q (%d bytes, %d free): %w",
			o.name, name, len(data), o.capacity-o.used, ErrNoSpace)
	}
	o.used = newUsed
	o.mu.Unlock()

	undo := func() {
		o.mu.Lock()
		o.used = o.used - int64(len(data)) + old
		o.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		undo()
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".monarch-*")
	if err != nil {
		undo()
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		undo()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		undo()
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		undo()
		return err
	}
	return nil
}

// Allocate implements RangeWriter: it reserves quota for name at size
// bytes and creates it as a sparse file of that length, ready for
// concurrent WriteAt calls. Unlike WriteFile there is no temp-rename
// dance — chunked placement relies on readers seeing written ranges
// mid-copy, and MONARCH only reads ranges it has already written.
func (o *OSFS) Allocate(ctx context.Context, name string, size int64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%s: allocate %q: negative size %d", o.name, name, size)
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}

	o.mu.Lock()
	var old int64
	if fi, err := os.Stat(path); err == nil {
		old = fi.Size()
	}
	newUsed := o.used - old + size
	if o.capacity > 0 && newUsed > o.capacity {
		o.mu.Unlock()
		return fmt.Errorf("%s: allocate %q (%d bytes, %d free): %w",
			o.name, name, size, o.capacity-o.used, ErrNoSpace)
	}
	o.used = newUsed
	o.mu.Unlock()

	undo := func() {
		o.mu.Lock()
		o.used = o.used - size + old
		o.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		undo()
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		undo()
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		undo()
		return err
	}
	if err := f.Close(); err != nil {
		undo()
		return err
	}
	return nil
}

// WriteAt implements RangeWriter. The file must have been Allocated and
// the range must stay within the allocated size.
func (o *OSFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: write %q: negative offset %d", o.name, name, off)
	}
	path, err := o.path(name)
	if err != nil {
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%s: write %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if off+int64(len(p)) > fi.Size() {
		return 0, fmt.Errorf("%s: write %q: range [%d,%d) past allocated size %d",
			o.name, name, off, off+int64(len(p)), fi.Size())
	}
	return f.WriteAt(p, off)
}

// Remove implements Backend.
func (o *OSFS) Remove(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%s: remove %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	o.mu.Lock()
	o.used -= fi.Size()
	o.mu.Unlock()
	return nil
}
