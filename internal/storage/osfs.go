package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"monarch/internal/bufpool"
)

// maxCachedFDs bounds the per-backend descriptor cache. Eviction is
// arbitrary (map order); a DL working set cycles through files fast
// enough that any warm descriptor helps and none is precious.
const maxCachedFDs = 64

// cachedFD is a reference-counted open descriptor. The cache holds one
// reference; each in-flight read holds another, so invalidation (on
// WriteFile's rename-over or Remove) can drop the cache reference
// without yanking the fd out from under a concurrent pread.
type cachedFD struct {
	f    *os.File
	refs atomic.Int32
}

func (c *cachedFD) release() {
	if c.refs.Add(-1) == 0 {
		c.f.Close()
	}
}

// OSFS is a Backend rooted at a real directory. It is what a production
// deployment would point at an XFS mount on the compute node's SSD and
// at the dataset directory on the PFS.
//
// Reads go through a bounded descriptor cache: the seed's
// open-read-close per ReadAt cost three syscalls per operation, which
// dominated tier-0 hits. WriteFile and Remove invalidate the cached
// descriptor (the rename-over swaps the inode); Allocate and WriteAt
// mutate the same inode in place, so cached descriptors stay valid
// through a chunked placement.
type OSFS struct {
	name     string
	root     string
	capacity int64

	mu   sync.Mutex
	used int64

	fdMu sync.Mutex
	fds  map[string]*cachedFD
}

// NewOSFS creates a backend rooted at dir, which must exist. The quota
// (capacity 0 = unlimited) is enforced against bytes written through
// this backend plus whatever List finds at construction time.
func NewOSFS(name, dir string, capacity int64) (*OSFS, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("osfs %s: %w", name, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("osfs %s: %s is not a directory", name, dir)
	}
	o := &OSFS{name: name, root: dir, capacity: capacity, fds: make(map[string]*cachedFD)}
	infos, err := o.List(context.Background())
	if err != nil {
		return nil, err
	}
	for _, fi := range infos {
		o.used += fi.Size
	}
	return o, nil
}

// Name implements Backend.
func (o *OSFS) Name() string { return o.name }

// Root returns the directory this backend is rooted at.
func (o *OSFS) Root() string { return o.root }

// Capacity implements Backend.
func (o *OSFS) Capacity() int64 { return o.capacity }

// Used implements Backend.
func (o *OSFS) Used() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.used
}

func (o *OSFS) path(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	return filepath.Join(o.root, filepath.FromSlash(name)), nil
}

// List implements Backend by walking the root recursively.
func (o *OSFS) List(ctx context.Context) ([]FileInfo, error) {
	var infos []FileInfo
	err := filepath.WalkDir(o.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if cerr := ctxErr(ctx); cerr != nil {
			return cerr
		}
		if d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(o.root, path)
		if err != nil {
			return err
		}
		infos = append(infos, FileInfo{Name: filepath.ToSlash(rel), Size: fi.Size()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("osfs %s: list: %w", o.name, err)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Stat implements Backend.
func (o *OSFS) Stat(ctx context.Context, name string) (FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return FileInfo{}, err
	}
	path, err := o.path(name)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return FileInfo{}, fmt.Errorf("%s: stat %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: name, Size: fi.Size()}, nil
}

// fd returns a referenced descriptor for name, from the cache or a
// fresh open. The caller must release() it after use.
func (o *OSFS) fd(name, path string) (*cachedFD, error) {
	o.fdMu.Lock()
	if c, ok := o.fds[name]; ok {
		c.refs.Add(1)
		o.fdMu.Unlock()
		return c, nil
	}
	o.fdMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := &cachedFD{f: f}
	c.refs.Store(2) // one for the cache, one for the caller
	o.fdMu.Lock()
	if old, ok := o.fds[name]; ok {
		// Lost an open race: keep the incumbent, hand back ours uncached.
		old.refs.Add(1)
		o.fdMu.Unlock()
		c.refs.Store(1)
		c.release()
		return old, nil
	}
	if len(o.fds) >= maxCachedFDs {
		for k, victim := range o.fds {
			delete(o.fds, k)
			defer victim.release()
			break
		}
	}
	o.fds[name] = c
	o.fdMu.Unlock()
	return c, nil
}

// invalidate drops the cached descriptor for name, if any; in-flight
// reads on it finish against the old inode.
func (o *OSFS) invalidate(name string) {
	o.fdMu.Lock()
	c, ok := o.fds[name]
	if ok {
		delete(o.fds, name)
	}
	o.fdMu.Unlock()
	if ok {
		c.release()
	}
}

// CloseIdle drops every cached descriptor (in-flight reads keep theirs
// alive until they finish). Long-lived daemons can call it when a
// backend goes cold; tests use it to release temp-dir descriptors.
func (o *OSFS) CloseIdle() {
	o.fdMu.Lock()
	fds := o.fds
	o.fds = make(map[string]*cachedFD)
	o.fdMu.Unlock()
	for _, c := range fds {
		c.release()
	}
}

// ReadAt implements Backend.
func (o *OSFS) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	path, err := o.path(name)
	if err != nil {
		return 0, err
	}
	c, err := o.fd(name, path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%s: read %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return 0, err
	}
	n, err := c.f.ReadAt(p, off)
	c.release()
	if err == io.EOF {
		err = nil
	}
	if err != nil {
		// A failing descriptor (e.g. the device went away) must not be
		// served to the next read.
		o.invalidate(name)
	}
	return n, err
}

// ReadView implements ViewReader. A real file system cannot lend
// stable bytes without mmap, so the "zero-copy" here is pragmatic: the
// pread lands in a pooled scratch buffer the view returns to bufpool
// on Release, sparing the caller's allocation and the second copy into
// a caller-owned buffer.
func (o *OSFS) ReadView(ctx context.Context, name string, off, n int64) (View, error) {
	if n < 0 {
		return View{}, fmt.Errorf("%s: read %q: negative length %d", o.name, name, n)
	}
	if off < 0 {
		return View{}, fmt.Errorf("%s: read %q: negative offset %d", o.name, name, off)
	}
	buf := bufpool.Get(int(n))
	m, err := o.ReadAt(ctx, name, buf, off)
	if err != nil {
		bufpool.Put(buf)
		return View{}, err
	}
	return PooledView(buf, m), nil
}

// ReadFile implements Backend.
func (o *OSFS) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	path, err := o.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%s: read %q: %w", o.name, name, ErrNotExist)
	}
	return data, err
}

// WriteFile implements Backend. The write is atomic: data lands in a
// temp file first and is renamed into place, so concurrent readers
// never observe a torn file.
func (o *OSFS) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}

	o.mu.Lock()
	var old int64
	if fi, err := os.Stat(path); err == nil {
		old = fi.Size()
	}
	newUsed := o.used - old + int64(len(data))
	if o.capacity > 0 && newUsed > o.capacity {
		o.mu.Unlock()
		return fmt.Errorf("%s: write %q (%d bytes, %d free): %w",
			o.name, name, len(data), o.capacity-o.used, ErrNoSpace)
	}
	o.used = newUsed
	o.mu.Unlock()

	undo := func() {
		o.mu.Lock()
		o.used = o.used - int64(len(data)) + old
		o.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		undo()
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".monarch-*")
	if err != nil {
		undo()
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		undo()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		undo()
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		undo()
		return err
	}
	// The rename swapped the inode: a cached descriptor would keep
	// serving the replaced content.
	o.invalidate(name)
	return nil
}

// Allocate implements RangeWriter: it reserves quota for name at size
// bytes and creates it as a sparse file of that length, ready for
// concurrent WriteAt calls. Unlike WriteFile there is no temp-rename
// dance — chunked placement relies on readers seeing written ranges
// mid-copy, and MONARCH only reads ranges it has already written.
func (o *OSFS) Allocate(ctx context.Context, name string, size int64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%s: allocate %q: negative size %d", o.name, name, size)
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}

	o.mu.Lock()
	var old int64
	if fi, err := os.Stat(path); err == nil {
		old = fi.Size()
	}
	newUsed := o.used - old + size
	if o.capacity > 0 && newUsed > o.capacity {
		o.mu.Unlock()
		return fmt.Errorf("%s: allocate %q (%d bytes, %d free): %w",
			o.name, name, size, o.capacity-o.used, ErrNoSpace)
	}
	o.used = newUsed
	o.mu.Unlock()

	undo := func() {
		o.mu.Lock()
		o.used = o.used - size + old
		o.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		undo()
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		undo()
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		undo()
		return err
	}
	if err := f.Close(); err != nil {
		undo()
		return err
	}
	return nil
}

// WriteAt implements RangeWriter. The file must have been Allocated and
// the range must stay within the allocated size.
func (o *OSFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: write %q: negative offset %d", o.name, name, off)
	}
	path, err := o.path(name)
	if err != nil {
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%s: write %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if off+int64(len(p)) > fi.Size() {
		return 0, fmt.Errorf("%s: write %q: range [%d,%d) past allocated size %d",
			o.name, name, off, off+int64(len(p)), fi.Size())
	}
	return f.WriteAt(p, off)
}

// Remove implements Backend.
func (o *OSFS) Remove(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	path, err := o.path(name)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%s: remove %q: %w", o.name, name, ErrNotExist)
	}
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	o.invalidate(name)
	o.mu.Lock()
	o.used -= fi.Size()
	o.mu.Unlock()
	return nil
}
