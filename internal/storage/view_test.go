package storage_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/storage"
	"monarch/internal/storage/storagetest"
)

func TestViewReaderConformance(t *testing.T) {
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			storagetest.RunViewReaderConformance(t, mk)
		})
	}
}

// TestMemFSViewBlocksWriteAt pins the MemFS view contract: a held view
// keeps chunked placement's WriteAt out of the file, so borrowers never
// observe bytes mutating under them.
func TestMemFSViewBlocksWriteAt(t *testing.T) {
	ctx := context.Background()
	m := storage.NewMemFS("mem", 0)
	if err := m.Allocate(ctx, "f", 64); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadView(ctx, "f", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	wrote := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.WriteAt(ctx, "f", []byte{1, 2, 3}, 0); err != nil {
			t.Errorf("WriteAt: %v", err)
		}
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("WriteAt completed while a view was held")
	case <-time.After(20 * time.Millisecond):
	}
	if v.Data[0] != 0 {
		t.Fatal("view mutated while held")
	}
	v.Release()
	wg.Wait()
	select {
	case <-wrote:
	default:
		t.Fatal("WriteAt still blocked after Release")
	}
}

// TestMemFSViewSurvivesWriteFile: WriteFile swaps in a fresh file
// object, so a held view keeps its snapshot and is never torn.
func TestMemFSViewSurvivesWriteFile(t *testing.T) {
	ctx := context.Background()
	m := storage.NewMemFS("mem", 0)
	if err := m.WriteFile(ctx, "f", []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadView(ctx, "f", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if err := m.WriteFile(ctx, "f", []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if got := string(v.Data); got != "snapshot" {
		t.Fatalf("held view = %q, want the pre-replace snapshot", got)
	}
}

// TestOSFSViewRecyclesBuffers: OSFS views draw their scratch from
// bufpool and return it on Release — the pool's books must balance.
func TestOSFSViewRecyclesBuffers(t *testing.T) {
	ctx := context.Background()
	o, err := storage.NewOSFS("os", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseIdle()
	if err := o.WriteFile(ctx, "f", make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	before := bufpool.Snapshot()
	for i := 0; i < 10; i++ {
		v, err := o.ReadView(ctx, "f", 0, 8192)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	}
	after := bufpool.Snapshot()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	if gets != 10 {
		t.Fatalf("Gets delta %d, want 10", gets)
	}
	if puts != gets {
		t.Fatalf("Puts delta %d != Gets delta %d: view buffers leaked", puts, gets)
	}
}

// TestOSFSFDCacheServesRepeatedReads: repeated reads of one file reuse
// a cached descriptor, and Remove invalidates it.
func TestOSFSFDCacheServesRepeatedReads(t *testing.T) {
	ctx := context.Background()
	o, err := storage.NewOSFS("os", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseIdle()
	if err := o.WriteFile(ctx, "f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4)
	for i := 0; i < 5; i++ {
		if n, err := o.ReadAt(ctx, "f", p, 2); err != nil || n != 4 || string(p) != "2345" {
			t.Fatalf("read %d: n=%d err=%v p=%q", i, n, err, p)
		}
	}
	if err := o.Remove(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadAt(ctx, "f", p, 0); err == nil {
		t.Fatal("read of removed file succeeded via stale descriptor")
	}
}
