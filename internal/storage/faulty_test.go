package storage

import (
	"context"
	"errors"
	"testing"
)

// TestFaultyStatAndListCountAsReads: Stat and List go through the same
// read-fault counter as ReadAt/ReadFile, so every op a circuit-breaker
// probe or namespace traversal issues is injectable.
func TestFaultyStatAndListCountAsReads(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "a", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(m)
	f.FailEveryNthRead(2)
	if _, err := f.Stat(ctx, "a"); err != nil { // read #1
		t.Fatalf("1st read op: %v", err)
	}
	if _, err := f.Stat(ctx, "a"); !errors.Is(err, ErrInjected) { // read #2
		t.Fatalf("2nd read op = %v, want injected", err)
	}
	if _, err := f.List(ctx); err != nil { // read #3
		t.Fatalf("3rd read op: %v", err)
	}
	if _, err := f.ReadFile(ctx, "a"); !errors.Is(err, ErrInjected) { // read #4
		t.Fatalf("4th read op = %v, want injected", err)
	}
}

// TestFaultyRemoveCountsAsWrite: removals hit the write-fault counter.
func TestFaultyRemoveCountsAsWrite(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	f := NewFaulty(m)
	f.FailEveryNthWrite(2)
	if err := f.WriteFile(ctx, "a", []byte("x")); err != nil { // write #1
		t.Fatal(err)
	}
	if err := f.Remove(ctx, "a"); !errors.Is(err, ErrInjected) { // write #2
		t.Fatalf("remove = %v, want injected", err)
	}
	if err := f.Remove(ctx, "a"); err != nil { // write #3 passes through
		t.Fatalf("remove after window: %v", err)
	}
}

// TestFaultyBreakFailsEveryOp: while broken, all six operations fail;
// after Fix they all work again.
func TestFaultyBreakFailsEveryOp(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(m)
	f.Break()
	if !f.Broken() {
		t.Fatal("Broken() = false after Break")
	}
	p := make([]byte, 1)
	ops := map[string]error{}
	_, ops["ReadAt"] = f.ReadAt(ctx, "a", p, 0)
	_, ops["ReadFile"] = f.ReadFile(ctx, "a")
	_, ops["Stat"] = f.Stat(ctx, "a")
	_, ops["List"] = f.List(ctx)
	ops["WriteFile"] = f.WriteFile(ctx, "b", []byte("y"))
	ops["Remove"] = f.Remove(ctx, "a")
	for op, err := range ops {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("%s while broken = %v, want injected", op, err)
		}
	}
	f.Fix()
	if f.Broken() {
		t.Fatal("Broken() = true after Fix")
	}
	if _, err := f.List(ctx); err != nil {
		t.Fatalf("List after fix: %v", err)
	}
	if err := f.WriteFile(ctx, "b", []byte("y")); err != nil {
		t.Fatalf("WriteFile after fix: %v", err)
	}
}

// TestFaultyFailNextWindows: FailNextReads/Writes fail exactly the next
// n ops, then heal — and the windowed ops do not advance the periodic
// counters.
func TestFaultyFailNextWindows(t *testing.T) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(m)
	f.FailNextReads(2)
	for i := 0; i < 2; i++ {
		if _, err := f.ReadFile(ctx, "a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("windowed read %d = %v, want injected", i+1, err)
		}
	}
	if _, err := f.ReadFile(ctx, "a"); err != nil {
		t.Fatalf("read after window: %v", err)
	}
	f.FailNextWrites(1)
	if err := f.WriteFile(ctx, "b", []byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("windowed write = %v, want injected", err)
	}
	if err := f.WriteFile(ctx, "b", []byte("y")); err != nil {
		t.Fatalf("write after window: %v", err)
	}
}

// TestFaultyFailRateDeterministic: the seeded probabilistic mode
// produces the identical fault pattern for the same seed, a different
// pattern for a different seed, and p<=0 disarms it.
func TestFaultyFailRateDeterministic(t *testing.T) {
	ctx := context.Background()
	pattern := func(seed uint64) []bool {
		m := NewMemFS("m", 0)
		if err := m.WriteFile(ctx, "a", []byte("x")); err != nil {
			t.Fatal(err)
		}
		f := NewFaulty(m)
		f.FailRate(0.5, seed)
		out := make([]bool, 100)
		for i := range out {
			_, err := f.ReadFile(ctx, "a")
			out[i] = err != nil
		}
		return out
	}
	a, b, c := pattern(42), pattern(42), pattern(7)
	fails := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			fails++
		}
	}
	if same {
		t.Fatal("different seeds produced the identical pattern")
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 failed %d of %d ops", fails, len(a))
	}

	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(m)
	f.FailRate(0.5, 42)
	f.FailRate(0, 42) // disarm
	for i := 0; i < 50; i++ {
		if _, err := f.ReadFile(ctx, "a"); err != nil {
			t.Fatalf("disarmed rate still injected at op %d", i)
		}
		if err := f.WriteFile(ctx, "b", []byte("y")); err != nil {
			t.Fatalf("disarmed rate still injected write at op %d", i)
		}
	}
}
