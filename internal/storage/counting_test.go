package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestCountingTracksOpsAndBytes(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("m", 0))

	if err := c.WriteFile(ctx, "f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 30)
	if _, err := c.ReadAt(ctx, "f", p, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.List(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "f"); err != nil {
		t.Fatal(err)
	}

	s := c.Counts()
	if s.Ops[OpWrite] != 1 || s.Ops[OpRead] != 2 || s.Ops[OpStat] != 1 ||
		s.Ops[OpList] != 1 || s.Ops[OpRemove] != 1 {
		t.Fatalf("counts = %+v", s)
	}
	if s.BytesWritten != 100 || s.BytesRead != 130 {
		t.Fatalf("bytes = %d read / %d written", s.BytesRead, s.BytesWritten)
	}
	if s.Total() != 6 || s.DataOps() != 3 || s.MetadataOps() != 2 {
		t.Fatalf("aggregates: total=%d data=%d meta=%d", s.Total(), s.DataOps(), s.MetadataOps())
	}
}

func TestCountingFailedWriteNotCountedAsBytes(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("m", 10))
	err := c.WriteFile(ctx, "big", make([]byte, 100))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatal(err)
	}
	s := c.Counts()
	if s.Ops[OpWrite] != 1 {
		t.Fatalf("write op should count even on failure: %+v", s)
	}
	if s.BytesWritten != 0 {
		t.Fatalf("failed write counted %d bytes", s.BytesWritten)
	}
}

func TestCountingReset(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("m", 0))
	_ = c.WriteFile(ctx, "f", []byte("x"))
	c.Reset()
	if c.Counts().Total() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestCountingConcurrent(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("m", 0))
	if err := c.WriteFile(ctx, "f", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := make([]byte, 10)
			for j := 0; j < 100; j++ {
				_, _ = c.ReadAt(ctx, "f", p, 0)
			}
		}()
	}
	wg.Wait()
	if got := c.Counts().Ops[OpRead]; got != 1600 {
		t.Fatalf("reads = %d, want 1600", got)
	}
	if got := c.Counts().BytesRead; got != 16000 {
		t.Fatalf("bytes = %d, want 16000", got)
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpList: "list", OpStat: "stat", OpRead: "read",
		OpWrite: "write", OpRemove: "remove", OpKind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFaultyWriteInjection(t *testing.T) {
	ctx := context.Background()
	f := NewFaulty(NewMemFS("m", 0))
	f.FailEveryNthWrite(2)
	if err := f.WriteFile(ctx, "a", []byte("1")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := f.WriteFile(ctx, "b", []byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should fail: %v", err)
	}
	if err := f.WriteFile(ctx, "c", []byte("3")); err != nil {
		t.Fatalf("third write: %v", err)
	}
}

func TestFaultyReadInjection(t *testing.T) {
	ctx := context.Background()
	f := NewFaulty(NewMemFS("m", 0))
	if err := f.WriteFile(ctx, "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	f.FailEveryNthRead(3)
	p := make([]byte, 4)
	for i := 1; i <= 6; i++ {
		_, err := f.ReadAt(ctx, "f", p, 0)
		if i%3 == 0 && !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d should fail, got %v", i, err)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestFaultyBreakAndFix(t *testing.T) {
	ctx := context.Background()
	f := NewFaulty(NewMemFS("m", 0))
	if err := f.WriteFile(ctx, "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.Break()
	if _, err := f.ReadFile(ctx, "f"); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken read: %v", err)
	}
	if _, err := f.Stat(ctx, "f"); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken stat: %v", err)
	}
	if err := f.WriteFile(ctx, "g", []byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken write: %v", err)
	}
	f.Fix()
	if _, err := f.ReadFile(ctx, "f"); err != nil {
		t.Fatalf("fixed read: %v", err)
	}
}

func TestCountingOverFaulty(t *testing.T) {
	// Instrumentation layers must compose.
	ctx := context.Background()
	f := NewFaulty(NewMemFS("m", 0))
	c := NewCounting(f)
	f.FailEveryNthWrite(1)
	if err := c.WriteFile(ctx, "f", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
	if c.Counts().Ops[OpWrite] != 1 {
		t.Fatal("op not counted through composition")
	}
}
