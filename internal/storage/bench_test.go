package storage

import (
	"bytes"
	"context"
	"testing"
)

func BenchmarkMemFSReadAt(b *testing.B) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	if err := m.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadAt(ctx, "f", buf, int64(i%4)*(256<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemFSWriteFile(b *testing.B) {
	ctx := context.Background()
	m := NewMemFS("m", 0)
	data := bytes.Repeat([]byte{2}, 256<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.WriteFile(ctx, "f", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountingOverhead(b *testing.B) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("m", 0))
	if err := c.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadAt(ctx, "f", buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOSFSReadAt(b *testing.B) {
	ctx := context.Background()
	o, err := NewOSFS("o", b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := o.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.ReadAt(ctx, "f", buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ValidateName("imagenet-100g.tfrecord-00017-of-01600"); err != nil {
			b.Fatal(err)
		}
	}
}
