package storage

import (
	"context"
	"testing"

	"monarch/internal/obs"
)

// TestCountingInstrument checks the obs bridge: the registered
// func-backed series must track Counts() live — including across a
// Reset, which the funcs observe rather than break.
func TestCountingInstrument(t *testing.T) {
	ctx := context.Background()
	c := NewCounting(NewMemFS("pfs", 0))
	reg := obs.NewRegistry()
	c.Instrument(reg, obs.L("tier", "1"))

	if err := c.WriteFile(ctx, "f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(ctx, "f"); err != nil {
		t.Fatal(err)
	}

	base := []obs.Label{obs.L("backend", "pfs"), obs.L("tier", "1")}
	snap := reg.Snapshot()
	val := func(name string, extra ...obs.Label) int64 {
		t.Helper()
		v, ok := snap.Int(name, append(append([]obs.Label(nil), base...), extra...)...)
		if !ok {
			t.Fatalf("series %s missing", name)
		}
		return v
	}
	counts := c.Counts()
	for k := OpKind(0); k < opKinds; k++ {
		if got := val("monarch_backend_ops_total", obs.L("op", k.String())); got != counts.Ops[k] {
			t.Errorf("ops{%s}: registry %d, Counts %d", k, got, counts.Ops[k])
		}
	}
	if got := val("monarch_backend_read_bytes_total"); got != counts.BytesRead || got != 100 {
		t.Errorf("read bytes: registry %d, Counts %d", got, counts.BytesRead)
	}
	if got := val("monarch_backend_write_bytes_total"); got != counts.BytesWritten || got != 100 {
		t.Errorf("write bytes: registry %d, Counts %d", got, counts.BytesWritten)
	}

	// Reset zeroes the source atomics; the registry view follows.
	c.Reset()
	snap = reg.Snapshot()
	if got := val("monarch_backend_read_bytes_total"); got != 0 {
		t.Errorf("read bytes after Reset = %d", got)
	}
	if got := val("monarch_backend_ops_total", obs.L("op", "write")); got != 0 {
		t.Errorf("write ops after Reset = %d", got)
	}
}
