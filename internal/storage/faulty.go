package storage

import (
	"context"
	"errors"
	"sync"
)

// ErrInjected is the error produced by a Faulty backend.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Backend and fails selected operations. It exists for
// failure-injection tests: MONARCH must degrade to serving from the PFS
// when a tier write fails, never corrupt its metadata, and never lose a
// read.
type Faulty struct {
	Backend

	mu        sync.Mutex
	failWrite int // fail every writes whose 1-based index is a multiple
	failRead  int
	writes    int
	reads     int
	broken    bool // when true, every op fails
}

// NewFaulty wraps b with no faults armed.
func NewFaulty(b Backend) *Faulty { return &Faulty{Backend: b} }

// FailEveryNthWrite makes every n-th WriteFile fail (n <= 0 disarms).
func (f *Faulty) FailEveryNthWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrite = n
}

// FailEveryNthRead makes every n-th read (ReadAt or ReadFile) fail.
func (f *Faulty) FailEveryNthRead(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRead = n
}

// Break makes every subsequent operation fail until Fix is called,
// simulating a device that dropped off the node.
func (f *Faulty) Break() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = true
}

// Fix clears Break.
func (f *Faulty) Fix() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = false
}

func (f *Faulty) readFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return ErrInjected
	}
	f.reads++
	if f.failRead > 0 && f.reads%f.failRead == 0 {
		return ErrInjected
	}
	return nil
}

func (f *Faulty) writeFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return ErrInjected
	}
	f.writes++
	if f.failWrite > 0 && f.writes%f.failWrite == 0 {
		return ErrInjected
	}
	return nil
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := f.readFault(); err != nil {
		return 0, err
	}
	return f.Backend.ReadAt(ctx, name, p, off)
}

// ReadFile implements Backend.
func (f *Faulty) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := f.readFault(); err != nil {
		return nil, err
	}
	return f.Backend.ReadFile(ctx, name)
}

// WriteFile implements Backend.
func (f *Faulty) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := f.writeFault(); err != nil {
		return err
	}
	return f.Backend.WriteFile(ctx, name, data)
}

// Stat implements Backend.
func (f *Faulty) Stat(ctx context.Context, name string) (FileInfo, error) {
	f.mu.Lock()
	broken := f.broken
	f.mu.Unlock()
	if broken {
		return FileInfo{}, ErrInjected
	}
	return f.Backend.Stat(ctx, name)
}
