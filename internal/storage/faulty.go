package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the error produced by a Faulty backend.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Backend and fails selected operations. It exists for
// failure-injection tests: MONARCH must degrade to serving from the PFS
// when a tier fails, never corrupt its metadata, and never lose a read.
// Every operation — including Stat, List and Remove — goes through the
// fault check, so circuit-breaker probes and namespace traversals are
// exercised too.
//
// Fault modes compose; an operation fails if any armed mode fires:
//
//   - Break/Fix: a device that dropped off the node (every op fails);
//   - FailEveryNthRead/Write: deterministic periodic faults;
//   - FailNextReads/Writes: a transient window — the next n ops fail,
//     then the device heals itself (exercises retry paths);
//   - FailRate: seeded probabilistic faults (flaky-device soak tests).
type Faulty struct {
	Backend

	mu             sync.Mutex
	failWrite      int // fail every write whose 1-based index is a multiple
	failRead       int
	writes         int
	reads          int
	broken         bool // when true, every op fails
	failNextReads  int  // transient window: the next n read ops fail
	failNextWrites int
	readRate       float64 // probability each read fails
	writeRate      float64
	rng            *rand.Rand
}

// NewFaulty wraps b with no faults armed.
func NewFaulty(b Backend) *Faulty { return &Faulty{Backend: b} }

// FailEveryNthWrite makes every n-th write op fail (n <= 0 disarms).
func (f *Faulty) FailEveryNthWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrite = n
}

// FailEveryNthRead makes every n-th read op (ReadAt, ReadFile, Stat or
// List) fail.
func (f *Faulty) FailEveryNthRead(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRead = n
}

// FailNextReads makes the next n read ops fail, then heals — a
// transient fault window.
func (f *Faulty) FailNextReads(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNextReads = n
}

// FailNextWrites makes the next n write ops fail, then heals.
func (f *Faulty) FailNextWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNextWrites = n
}

// FailRate arms seeded probabilistic faults: every read and write op
// independently fails with probability p (p <= 0 disarms). The seed
// makes runs reproducible.
func (f *Faulty) FailRate(p float64, seed uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readRate, f.writeRate = p, p
	f.rng = rand.New(rand.NewSource(int64(seed)))
	if p <= 0 {
		f.rng = nil
	}
}

// Break makes every subsequent operation fail until Fix is called,
// simulating a device that dropped off the node.
func (f *Faulty) Break() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = true
}

// Fix clears Break.
func (f *Faulty) Fix() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broken = false
}

// Broken reports whether the device is currently broken.
func (f *Faulty) Broken() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.broken
}

func (f *Faulty) readFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return ErrInjected
	}
	if f.failNextReads > 0 {
		f.failNextReads--
		return ErrInjected
	}
	f.reads++
	if f.failRead > 0 && f.reads%f.failRead == 0 {
		return ErrInjected
	}
	if f.rng != nil && f.readRate > 0 && f.rng.Float64() < f.readRate {
		return ErrInjected
	}
	return nil
}

func (f *Faulty) writeFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return ErrInjected
	}
	if f.failNextWrites > 0 {
		f.failNextWrites--
		return ErrInjected
	}
	f.writes++
	if f.failWrite > 0 && f.writes%f.failWrite == 0 {
		return ErrInjected
	}
	if f.rng != nil && f.writeRate > 0 && f.rng.Float64() < f.writeRate {
		return ErrInjected
	}
	return nil
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := f.readFault(); err != nil {
		return 0, err
	}
	return f.Backend.ReadAt(ctx, name, p, off)
}

// ReadFile implements Backend.
func (f *Faulty) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := f.readFault(); err != nil {
		return nil, err
	}
	return f.Backend.ReadFile(ctx, name)
}

// WriteFile implements Backend.
func (f *Faulty) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := f.writeFault(); err != nil {
		return err
	}
	return f.Backend.WriteFile(ctx, name, data)
}

// Allocate implements RangeWriter when the wrapped backend does; the
// allocation counts as a write op for fault purposes. Wrapping a
// backend without range support yields errors.ErrUnsupported so
// chunked placement can fall back to whole-file copies.
func (f *Faulty) Allocate(ctx context.Context, name string, size int64) error {
	rw, ok := f.Backend.(RangeWriter)
	if !ok {
		return fmt.Errorf("%s: allocate %q: %w", f.Backend.Name(), name, errors.ErrUnsupported)
	}
	if err := f.writeFault(); err != nil {
		return err
	}
	return rw.Allocate(ctx, name, size)
}

// WriteAt implements RangeWriter when the wrapped backend does; each
// chunk write goes through the write-fault check, so tests can fail a
// single chunk of a multi-chunk placement.
func (f *Faulty) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	rw, ok := f.Backend.(RangeWriter)
	if !ok {
		return 0, fmt.Errorf("%s: write %q: %w", f.Backend.Name(), name, errors.ErrUnsupported)
	}
	if err := f.writeFault(); err != nil {
		return 0, err
	}
	return rw.WriteAt(ctx, name, p, off)
}

// Stat implements Backend; like every other read op it goes through the
// read-fault check.
func (f *Faulty) Stat(ctx context.Context, name string) (FileInfo, error) {
	if err := f.readFault(); err != nil {
		return FileInfo{}, err
	}
	return f.Backend.Stat(ctx, name)
}

// List implements Backend.
func (f *Faulty) List(ctx context.Context) ([]FileInfo, error) {
	if err := f.readFault(); err != nil {
		return nil, err
	}
	return f.Backend.List(ctx)
}

// Remove implements Backend; removals count as write ops.
func (f *Faulty) Remove(ctx context.Context, name string) error {
	if err := f.writeFault(); err != nil {
		return err
	}
	return f.Backend.Remove(ctx, name)
}
