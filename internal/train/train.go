// Package train orchestrates simulated training runs: the node's
// compute resources (CPU cores, GPUs), the per-epoch pipeline, and the
// synchronous data-parallel training loop consuming batches.
//
// One Run reproduces one measurement of the paper's methodology: a
// model trained for E epochs on one Frontera-like compute node, with
// per-epoch elapsed times and whole-run CPU/GPU utilisation recorded.
package train

import (
	"fmt"
	"time"

	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/rng"
	"monarch/internal/sim"
)

// NodeSpec describes the compute node. The default matches the paper's
// testbed: two 16-core Xeons and four Quadro RTX 5000.
type NodeSpec struct {
	CPUCores int
	GPUs     int
}

// Frontera returns the paper's node.
func Frontera() NodeSpec { return NodeSpec{CPUCores: 32, GPUs: 4} }

// Config describes one training run.
type Config struct {
	Model  models.Model
	Node   NodeSpec
	Epochs int
	// Pipeline is the input-pipeline template; Source and Manifest must
	// be set, CPU is filled in by Run. PreprocessPerImage defaults to
	// the model's.
	Pipeline pipeline.Config
	// Seed drives shard shuffling and step-time noise.
	Seed uint64
	// OnEpochEnd, when set, fires after each epoch on the training
	// process; the experiment harness snapshots per-epoch I/O counters
	// here, and distributed runs use it as an epoch barrier (it may
	// block in virtual time).
	OnEpochEnd func(p *sim.Proc, epoch int)
}

// EpochResult is one epoch's measurement.
type EpochResult struct {
	Epoch    int
	Duration time.Duration
	Records  int
	Batches  int
}

// Result is one run's measurement.
type Result struct {
	Epochs []EpochResult
	// CPUUtil and GPUUtil are whole-run mean utilisations in [0,1], as
	// the paper reports resource usage.
	CPUUtil float64
	GPUUtil float64
	// Total is the summed epoch time.
	Total time.Duration
}

// Run executes the training loop on the calling simulation process. It
// must be invoked from inside a sim process (it blocks in virtual
// time).
func Run(p *sim.Proc, cfg Config) (Result, error) {
	if err := cfg.Model.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Epochs <= 0 {
		return Result{}, fmt.Errorf("train: epochs = %d", cfg.Epochs)
	}
	if cfg.Node.CPUCores <= 0 || cfg.Node.GPUs <= 0 {
		return Result{}, fmt.Errorf("train: bad node spec %+v", cfg.Node)
	}
	env := p.Env()
	cpu := sim.NewResource(env, "cpu", cfg.Node.CPUCores)
	gpu := sim.NewResource(env, "gpu", cfg.Node.GPUs)
	stepRnd := rng.New(cfg.Seed ^ 0xfeedface)

	pcfg := cfg.Pipeline
	pcfg.CPU = cpu
	if pcfg.PreprocessPerImage == 0 {
		pcfg.PreprocessPerImage = cfg.Model.PreprocessPerImage
	}

	var res Result
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := env.Now()
		ep, err := pipeline.StartEpoch(env, pcfg, epoch, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		er := EpochResult{Epoch: epoch}
		for {
			b, ok := ep.Next(p)
			if !ok {
				break
			}
			er.Records += b.Records
			er.Batches++
			step(p, gpu, cfg.Model, stepRnd)
		}
		if err := ep.Err(); err != nil {
			return Result{}, err
		}
		er.Duration = (env.Now() - start).Duration()
		res.Epochs = append(res.Epochs, er)
		res.Total += er.Duration
		if cfg.OnEpochEnd != nil {
			cfg.OnEpochEnd(p, epoch)
		}
	}
	res.CPUUtil = cpu.Utilization()
	res.GPUUtil = gpu.Utilization()
	return res, nil
}

// step performs one synchronous data-parallel training step: all GPUs
// are held for the busy fraction of the (noisy) step time, the
// remainder models host-side synchronisation.
func step(p *sim.Proc, gpu *sim.Resource, m models.Model, rnd *rng.Source) {
	d := float64(m.StepTime)
	if m.StepSigma > 0 {
		d = rnd.LogNormalMean(d, m.StepSigma)
	}
	busy := time.Duration(d * m.GPUBusyFraction)
	idle := time.Duration(d) - busy
	gpu.Acquire(p, gpu.Capacity())
	p.Sleep(busy)
	gpu.Release(gpu.Capacity())
	if idle > 0 {
		p.Sleep(idle)
	}
}
