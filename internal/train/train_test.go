package train

import (
	"testing"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/sim"
	"monarch/internal/simstore"
)

// smallManifest plans a tiny dataset for fast runs.
func smallManifest(t *testing.T, images, shards int, total int64) *dataset.Manifest {
	t.Helper()
	m, err := dataset.Plan(dataset.Spec{
		Name: "t", NumImages: images, TotalBytes: total,
		NumShards: shards, SizeSigma: 0.2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runTraining executes one run over a fresh env with a virtual store.
func runTraining(t *testing.T, edit func(*Config), spec simstore.DeviceSpec) Result {
	t.Helper()
	man := smallManifest(t, 512, 8, 2<<20)
	env := sim.NewEnv(11)
	defer env.Close()
	store := simstore.NewStore(simstore.NewDevice(env, spec), spec.Name, 0)
	for i := range man.Shards {
		store.AddFile(man.Shards[i].Name, man.Shards[i].Size)
	}
	pcfg := pipeline.DefaultConfig()
	pcfg.Manifest = man
	pcfg.Source = store
	pcfg.Readers = 4
	pcfg.ReadSize = 64 << 10
	pcfg.GroupSize = 16
	pcfg.PreprocessWorkers = 4
	pcfg.BatchSize = 64
	pcfg.PrefetchBatches = 4
	pcfg.GroupQueueLen = 8

	cfg := Config{
		Model:    models.LeNet(),
		Node:     NodeSpec{CPUCores: 8, GPUs: 4},
		Epochs:   2,
		Pipeline: pcfg,
		Seed:     5,
	}
	if edit != nil {
		edit(&cfg)
	}
	var res Result
	var runErr error
	env.Go("train", func(p *sim.Proc) {
		res, runErr = Run(p, cfg)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res
}

func quietSSD() simstore.DeviceSpec {
	s := simstore.SSDSpec()
	s.LatencySigma = 0
	return s
}

func TestRunDeliversAllEpochs(t *testing.T) {
	res := runTraining(t, nil, quietSSD())
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.Records != 512 {
			t.Fatalf("epoch %d records = %d, want 512", e.Epoch, e.Records)
		}
		if e.Batches != 8 {
			t.Fatalf("epoch %d batches = %d, want 8", e.Epoch, e.Batches)
		}
		if e.Duration <= 0 {
			t.Fatalf("epoch %d duration = %v", e.Epoch, e.Duration)
		}
	}
	if res.Total != res.Epochs[0].Duration+res.Epochs[1].Duration {
		t.Fatal("total != sum of epochs")
	}
}

func TestUtilizationsRecorded(t *testing.T) {
	res := runTraining(t, nil, quietSSD())
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Fatalf("cpu util = %v", res.CPUUtil)
	}
	if res.GPUUtil <= 0 || res.GPUUtil > 1 {
		t.Fatalf("gpu util = %v", res.GPUUtil)
	}
}

func TestComputeBoundModelDominatesStorage(t *testing.T) {
	// A heavy model must show (a) nearly identical epoch times across
	// devices and (b) high GPU utilisation — the paper's ResNet-50
	// signature.
	heavy := func(c *Config) {
		c.Model = models.Model{
			Name: "heavy", StepTime: 400 * time.Millisecond,
			GPUBusyFraction: 0.9, PreprocessPerImage: 100 * time.Microsecond,
		}
	}
	lustre := simstore.LustreSpec()
	lustre.LatencySigma = 0
	fast := runTraining(t, heavy, quietSSD())
	slow := runTraining(t, heavy, lustre)
	ratio := float64(slow.Total) / float64(fast.Total)
	if ratio > 1.15 {
		t.Fatalf("compute-bound run should not care about storage: ratio %v", ratio)
	}
	if fast.GPUUtil < 0.7 {
		t.Fatalf("gpu util = %v, want high for compute-bound", fast.GPUUtil)
	}
}

func TestIOBoundModelSpeedsUpWithFasterStorage(t *testing.T) {
	light := func(c *Config) {
		c.Model = models.Model{
			Name: "light", StepTime: time.Millisecond,
			GPUBusyFraction: 1, PreprocessPerImage: 10 * time.Microsecond,
		}
	}
	lustre := simstore.LustreSpec()
	lustre.LatencySigma = 0
	fast := runTraining(t, light, quietSSD())
	slow := runTraining(t, light, lustre)
	if float64(slow.Total) < 1.3*float64(fast.Total) {
		t.Fatalf("I/O-bound model not storage-sensitive: ssd %v vs lustre %v",
			fast.Total, slow.Total)
	}
	// Faster storage must raise utilisation of the compute resources
	// (the paper's §II-A resource-usage observation).
	if fast.GPUUtil <= slow.GPUUtil {
		t.Fatalf("gpu util did not improve with faster storage: %v vs %v",
			fast.GPUUtil, slow.GPUUtil)
	}
}

func TestOnEpochEndFires(t *testing.T) {
	var epochs []int
	runTraining(t, func(c *Config) {
		c.OnEpochEnd = func(_ *sim.Proc, e int) { epochs = append(epochs, e) }
	}, quietSSD())
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 1 {
		t.Fatalf("epoch callbacks: %v", epochs)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := runTraining(t, nil, quietSSD())
	b := runTraining(t, nil, quietSSD())
	for i := range a.Epochs {
		if a.Epochs[i].Duration != b.Epochs[i].Duration {
			t.Fatalf("epoch %d durations differ: %v vs %v", i,
				a.Epochs[i].Duration, b.Epochs[i].Duration)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	man := smallManifest(t, 16, 2, 32_000)
	store := simstore.NewStore(simstore.NewDevice(env, quietSSD()), "s", 0)
	for i := range man.Shards {
		store.AddFile(man.Shards[i].Name, man.Shards[i].Size)
	}
	pcfg := pipeline.DefaultConfig()
	pcfg.Manifest = man
	pcfg.Source = store
	bad := []Config{
		{Model: models.Model{}, Node: Frontera(), Epochs: 1, Pipeline: pcfg},
		{Model: models.LeNet(), Node: Frontera(), Epochs: 0, Pipeline: pcfg},
		{Model: models.LeNet(), Node: NodeSpec{}, Epochs: 1, Pipeline: pcfg},
	}
	env.Go("t", func(p *sim.Proc) {
		for i, cfg := range bad {
			if _, err := Run(p, cfg); err == nil {
				t.Errorf("config %d should fail", i)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFronteraNodeSpec(t *testing.T) {
	n := Frontera()
	if n.CPUCores != 32 || n.GPUs != 4 {
		t.Fatalf("Frontera spec = %+v", n)
	}
}
