package pool

import (
	"context"
	"testing"
	"time"
)

var (
	_ Introspector = (*GoPool)(nil)
	_ Introspector = (*SimPool)(nil)
)

// TestGoPoolStats checks the load view the observability gauges are
// built on: with 2 workers and 4 blocked tasks, Active saturates at the
// worker count and Pending-Active is the queue depth.
func TestGoPoolStats(t *testing.T) {
	p := NewGoPool(2)
	defer p.Close()
	if s := p.Stats(); s.Workers != 2 || s.Pending != 0 || s.Active != 0 {
		t.Fatalf("idle stats = %+v", s)
	}

	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		p.Submit(func(ctx context.Context) { <-release })
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := p.Stats()
		if s.Active == 2 && s.Pending == 4 {
			if depth := s.Pending - s.Active; depth != 2 {
				t.Fatalf("queue depth = %d, want 2", depth)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never saturated: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for p.Stats() != (Stats{Workers: 2}) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never drained: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
