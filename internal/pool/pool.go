// Package pool provides the background-worker abstraction behind
// MONARCH's placement handler.
//
// The paper implements the placement handler over the CTPL C++ thread
// pool: a fixed set of threads copying files between storage tiers
// while the framework's reads proceed in the foreground. Here the same
// middleware code runs in two modes, so the pool is an interface:
//
//   - GoPool runs tasks on real goroutines (the usable-library mode);
//   - SimPool runs tasks as simulation processes so copies consume
//     virtual time and contend for simulated devices.
package pool

import (
	"context"
	"sync"

	"monarch/internal/sim"
)

// Task is one unit of background work. The context identifies the
// executing worker; in sim mode it carries the worker's process.
type Task func(ctx context.Context)

// Stats is a point-in-time view of an executor's load, exposed for the
// observability layer (queue depth and worker utilisation gauges).
type Stats struct {
	// Workers is the fixed worker count.
	Workers int
	// Pending is queued plus currently-running tasks (same value as
	// Executor.Pending).
	Pending int
	// Active is the number of workers currently running a task;
	// Pending - Active is the queue depth.
	Active int
}

// Introspector is an optional Executor extension reporting load. Both
// GoPool and SimPool implement it; custom executors that do not are
// observed through Pending alone.
type Introspector interface {
	Stats() Stats
}

// Executor runs tasks on a fixed-size worker set. Submit never blocks
// on task execution (the queue is unbounded) so foreground reads are
// never delayed by placement backlog.
type Executor interface {
	// Submit enqueues a task; it reports false if the executor is
	// closed, in which case the task will not run.
	Submit(t Task) bool
	// Pending returns queued plus currently-running task count.
	Pending() int
	// Workers returns the worker count.
	Workers() int
	// Close stops intake. Queued tasks still run; Close does not wait.
	Close()
	// Shutdown cancels the context handed to running and queued tasks,
	// then stops intake. Tasks must notice cancellation and return
	// quickly; a cancelled task is expected to treat the interruption
	// as a no-op, not a failure.
	Shutdown()
}

// GoPool is an Executor backed by real goroutines.
type GoPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Task
	pending int
	active  int
	closed  bool
	workers int
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
}

// NewGoPool starts a pool with n workers.
func NewGoPool(n int) *GoPool {
	if n <= 0 {
		panic("pool: worker count must be positive")
	}
	p := &GoPool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *GoPool) worker() {
	defer p.wg.Done()
	ctx := p.ctx
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()

		t(ctx)

		p.mu.Lock()
		p.pending--
		p.active--
		p.mu.Unlock()
	}
}

// Submit implements Executor.
func (p *GoPool) Submit(t Task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, t)
	p.pending++
	p.cond.Signal()
	return true
}

// Pending implements Executor.
func (p *GoPool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Workers implements Executor.
func (p *GoPool) Workers() int { return p.workers }

// Stats implements Introspector.
func (p *GoPool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Workers: p.workers, Pending: p.pending, Active: p.active}
}

// Close implements Executor and additionally waits for queued tasks to
// drain, so callers can rely on quiescence after Close returns.
func (p *GoPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.cancel() // workers are gone; release the context
}

// Shutdown implements Executor: it cancels the worker context so
// running and still-queued tasks see ctx.Done(), then closes the pool.
// Like Close it returns once the workers drain — which is fast, since
// every remaining task runs with a cancelled context.
func (p *GoPool) Shutdown() {
	p.cancel()
	p.Close()
}

// SimPool is an Executor whose workers are simulation processes.
type SimPool struct {
	env     *sim.Env
	queue   *sim.Queue[Task]
	pending int
	active  int
	workers int
	closed  bool

	mu        sync.Mutex
	cancels   []context.CancelFunc
	cancelled bool
}

// NewSimPool spawns n daemon worker processes in env.
func NewSimPool(env *sim.Env, name string, n int) *SimPool {
	if n <= 0 {
		panic("pool: worker count must be positive")
	}
	p := &SimPool{
		env:     env,
		queue:   sim.NewQueue[Task](env, name+"-tasks", 0),
		workers: n,
	}
	for i := 0; i < n; i++ {
		env.GoDaemon(name+"-worker", func(proc *sim.Proc) {
			ctx, cancel := context.WithCancel(proc.Context())
			defer cancel()
			p.mu.Lock()
			if p.cancelled {
				cancel()
			}
			p.cancels = append(p.cancels, cancel)
			p.mu.Unlock()
			for {
				t, ok := p.queue.Get(proc)
				if !ok {
					return
				}
				p.active++
				t(ctx)
				p.active--
				p.pending--
			}
		})
	}
	return p
}

// Submit implements Executor. It must be called from within the
// simulation (any process or scheduler callback).
func (p *SimPool) Submit(t Task) bool {
	if p.closed {
		return false
	}
	p.pending++
	if !p.queue.TryPut(t) {
		p.pending--
		return false
	}
	return true
}

// Pending implements Executor.
func (p *SimPool) Pending() int { return p.pending }

// Workers implements Executor.
func (p *SimPool) Workers() int { return p.workers }

// Stats implements Introspector. Like Pending, it is only meaningful
// from within the simulation, where execution is cooperative.
func (p *SimPool) Stats() Stats {
	return Stats{Workers: p.workers, Pending: p.pending, Active: p.active}
}

// Close implements Executor. Queued tasks still run; workers exit once
// the queue drains (or when the environment is closed).
func (p *SimPool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.queue.Close()
}

// Shutdown implements Executor: it cancels every worker's task context
// and closes the pool. Queued tasks still run, but observe a cancelled
// context and are expected to return immediately.
func (p *SimPool) Shutdown() {
	p.mu.Lock()
	p.cancelled = true
	cancels := append([]context.CancelFunc(nil), p.cancels...)
	p.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	p.Close()
}
