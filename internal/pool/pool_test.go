package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monarch/internal/sim"
)

func TestGoPoolRunsAllTasks(t *testing.T) {
	p := NewGoPool(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Submit(func(context.Context) { n.Add(1) }) {
			t.Fatal("submit refused")
		}
	}
	p.Close()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestGoPoolParallelism(t *testing.T) {
	p := NewGoPool(4)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		p.Submit(func(context.Context) {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > 4 {
		t.Fatalf("observed %d concurrent tasks with 4 workers", got)
	}
	if got := peak.Load(); got < 2 {
		t.Fatalf("pool never ran tasks concurrently (peak %d)", got)
	}
}

func TestGoPoolSubmitAfterCloseRefused(t *testing.T) {
	p := NewGoPool(1)
	p.Close()
	if p.Submit(func(context.Context) {}) {
		t.Fatal("submit after close should be refused")
	}
	p.Close() // idempotent
}

func TestGoPoolCloseDrainsQueue(t *testing.T) {
	p := NewGoPool(1)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func(context.Context) {
			time.Sleep(100 * time.Microsecond)
			n.Add(1)
		})
	}
	p.Close()
	if n.Load() != 50 {
		t.Fatalf("close lost tasks: %d of 50 ran", n.Load())
	}
}

func TestGoPoolPending(t *testing.T) {
	p := NewGoPool(1)
	release := make(chan struct{})
	p.Submit(func(context.Context) { <-release })
	p.Submit(func(context.Context) {})
	// One running + one queued.
	deadline := time.After(time.Second)
	for p.Pending() != 2 {
		select {
		case <-deadline:
			t.Fatalf("pending = %d, want 2", p.Pending())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	p.Close()
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after close", p.Pending())
	}
}

func TestGoPoolWorkers(t *testing.T) {
	p := NewGoPool(6)
	defer p.Close()
	if p.Workers() != 6 {
		t.Fatalf("workers = %d", p.Workers())
	}
}

func TestGoPoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGoPool(0)
}

func TestGoPoolShutdownCancelsRunningTask(t *testing.T) {
	p := NewGoPool(1)
	started := make(chan struct{})
	errc := make(chan error, 1)
	p.Submit(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		errc <- ctx.Err()
	})
	<-started
	done := make(chan struct{})
	go func() { p.Shutdown(); close(done) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("running task saw nil ctx.Err after Shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("running task never saw cancellation")
	}
	<-done
	if p.Submit(func(context.Context) {}) {
		t.Fatal("submit after shutdown accepted")
	}
}

func TestGoPoolShutdownCancelsQueuedTasks(t *testing.T) {
	p := NewGoPool(1)
	started := make(chan struct{})
	p.Submit(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
	})
	<-started
	var sawCancelled atomic.Int64
	for i := 0; i < 10; i++ {
		p.Submit(func(ctx context.Context) {
			if ctx.Err() != nil {
				sawCancelled.Add(1)
			}
		})
	}
	p.Shutdown() // waits for the drain
	if sawCancelled.Load() != 10 {
		t.Fatalf("%d of 10 queued tasks saw a cancelled context", sawCancelled.Load())
	}
}

func TestGoPoolCloseDoesNotCancelTasks(t *testing.T) {
	p := NewGoPool(1)
	var sawCancelled atomic.Bool
	for i := 0; i < 5; i++ {
		p.Submit(func(ctx context.Context) {
			if ctx.Err() != nil {
				sawCancelled.Store(true)
			}
		})
	}
	p.Close()
	if sawCancelled.Load() {
		t.Fatal("Close cancelled task contexts; only Shutdown may")
	}
}

func TestSimPoolRunsTasksInVirtualTime(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	p := NewSimPool(env, "placer", 2)
	var done []sim.Time
	env.Go("submitter", func(proc *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.Submit(func(ctx context.Context) {
				w := sim.MustProc(ctx)
				w.Sleep(10 * time.Second)
				done = append(done, env.Now())
			})
		}
		// Wait for all tasks: poll pending.
		for p.Pending() > 0 {
			proc.Sleep(time.Second)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("ran %d tasks", len(done))
	}
	// 2 workers, 4 tasks of 10s: completions at 10,10,20,20.
	if done[0] != sim.Time(10*time.Second) || done[3] != sim.Time(20*time.Second) {
		t.Fatalf("completions: %v", done)
	}
}

func TestSimPoolWorkerContextCarriesProc(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	p := NewSimPool(env, "p", 1)
	ok := false
	env.Go("s", func(proc *sim.Proc) {
		p.Submit(func(ctx context.Context) {
			_, ok = sim.ProcFromContext(ctx)
		})
		for p.Pending() > 0 {
			proc.Sleep(time.Millisecond)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("worker context missing proc")
	}
}

func TestSimPoolCloseStopsIntake(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	p := NewSimPool(env, "p", 1)
	ran := 0
	env.Go("s", func(proc *sim.Proc) {
		p.Submit(func(context.Context) { ran++ })
		p.Close()
		if p.Submit(func(context.Context) { ran++ }) {
			t.Error("submit after close accepted")
		}
		proc.Sleep(time.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestSimPoolShutdownCancelsTaskContext(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	p := NewSimPool(env, "p", 1)
	var errSeen error
	env.Go("s", func(proc *sim.Proc) {
		p.Submit(func(ctx context.Context) {
			w := sim.MustProc(ctx)
			w.Sleep(10 * time.Second) // still running when Shutdown fires
			errSeen = ctx.Err()
		})
		proc.Sleep(time.Second)
		p.Shutdown()
		proc.Sleep(time.Minute)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if errSeen == nil {
		t.Fatal("task context not cancelled by Shutdown")
	}
	if p.Submit(func(context.Context) {}) {
		t.Fatal("submit after shutdown accepted")
	}
}

func TestSimPoolPanicsOnBadSize(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimPool(env, "p", -1)
}
