package dataset

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"

	"monarch/internal/recordio"
	"monarch/internal/storage"
	"monarch/internal/tfexample"
	"monarch/internal/tfrecord"
)

func smallSpec() Spec {
	return Spec{
		Name:       "test",
		NumImages:  100,
		TotalBytes: 200_000,
		NumShards:  4,
		SizeSigma:  0.3,
		Seed:       7,
	}
}

func TestSpecValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},
		{Name: "x", NumImages: 0, TotalBytes: 1, NumShards: 1},
		{Name: "x", NumImages: 10, TotalBytes: 1000, NumShards: 0},
		{Name: "x", NumImages: 2, TotalBytes: 1000, NumShards: 3},
		{Name: "x", NumImages: 10, TotalBytes: 0, NumShards: 1},
		{Name: "x", NumImages: 1000, TotalBytes: 1000, NumShards: 1}, // < 1 B/image after framing
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid: %+v", i, s)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := Plan(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBytes() != b.TotalBytes() || a.NumRecords() != b.NumRecords() {
		t.Fatal("plans differ across runs")
	}
	for i := range a.Shards {
		if a.Shards[i].Size != b.Shards[i].Size {
			t.Fatalf("shard %d sizes differ", i)
		}
	}
}

func TestPlanShape(t *testing.T) {
	spec := smallSpec()
	m, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != spec.NumShards {
		t.Fatalf("shards = %d", len(m.Shards))
	}
	if m.NumRecords() != spec.NumImages {
		t.Fatalf("records = %d, want %d", m.NumRecords(), spec.NumImages)
	}
	// Total size should land near the target (lognormal sampling noise).
	total := float64(m.TotalBytes())
	target := float64(spec.TotalBytes)
	if total < target*0.7 || total > target*1.3 {
		t.Fatalf("total = %v, target %v", total, target)
	}
	// Records within each shard must tile it exactly.
	for _, s := range m.Shards {
		off := int64(0)
		for _, e := range s.Records {
			if e.Offset != off {
				t.Fatalf("shard %s: record at %d, want %d", s.Name, e.Offset, off)
			}
			off = e.End()
		}
		if off != s.Size {
			t.Fatalf("shard %s: records end at %d, size %d", s.Name, off, s.Size)
		}
	}
}

func TestPlanUnevenImageDistribution(t *testing.T) {
	spec := smallSpec()
	spec.NumImages = 10
	spec.NumShards = 3
	m, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{len(m.Shards[0].Records), len(m.Shards[1].Records), len(m.Shards[2].Records)}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("distribution = %v", counts)
	}
}

func TestPlanZeroSigmaUniformSizes(t *testing.T) {
	spec := smallSpec()
	spec.SizeSigma = 0
	m, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.MeanImageBytes()
	for _, s := range m.Shards {
		for _, e := range s.Records {
			if e.Length != want {
				t.Fatalf("record length %d, want %d", e.Length, want)
			}
		}
	}
}

func TestShardName(t *testing.T) {
	got := ShardName("imagenet-100g", TFRecord, 17, 1600)
	want := "imagenet-100g.tfrecord-00017-of-01600"
	if got != want {
		t.Fatalf("got %q", got)
	}
	if got := ShardName("ds", RecordIO, 0, 2); got != "ds.rec-00000-of-00002" {
		t.Fatalf("recordio name %q", got)
	}
}

func TestFormatString(t *testing.T) {
	if TFRecord.String() != "tfrecord" || RecordIO.String() != "recordio" ||
		Format(9).String() != "unknown" {
		t.Fatal("Format.String broken")
	}
}

func TestPlanRecordIOTiling(t *testing.T) {
	spec := smallSpec()
	spec.Format = RecordIO
	m, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Shards {
		off := int64(0)
		for _, e := range s.Records {
			if e.Offset != off {
				t.Fatalf("shard %s: record at %d, want %d", s.Name, e.Offset, off)
			}
			off = RecordIO.RecordEnd(e)
		}
		if off != s.Size {
			t.Fatalf("shard %s: records end at %d, size %d", s.Name, off, s.Size)
		}
	}
}

func TestMaterializeRecordIODecodes(t *testing.T) {
	ctx := context.Background()
	b := storage.NewMemFS("pfs", 0)
	spec := smallSpec()
	spec.Format = RecordIO
	spec.NumImages, spec.NumShards = 30, 3
	m, err := Materialize(ctx, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	recID := 0
	for _, shard := range m.Shards {
		data, err := b.ReadFile(ctx, shard.Name)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != shard.Size {
			t.Fatalf("shard %s: %d bytes on disk, planned %d", shard.Name, len(data), shard.Size)
		}
		idx, err := recordio.BuildIndex(data)
		if err != nil {
			t.Fatalf("shard %s invalid RecordIO: %v", shard.Name, err)
		}
		if len(idx) != len(shard.Records) {
			t.Fatalf("shard %s: %d records, planned %d", shard.Name, len(idx), len(shard.Records))
		}
		r := recordio.NewReader(bytes.NewReader(data))
		for range shard.Records {
			payload, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload, Payload(recID, len(payload))) {
				t.Fatalf("record %d payload mismatch", recID)
			}
			recID++
		}
	}
}

func TestMaterializeMatchesPlan(t *testing.T) {
	ctx := context.Background()
	b := storage.NewMemFS("pfs", 0)
	spec := smallSpec()
	m, err := Materialize(ctx, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range m.Shards {
		fi, err := b.Stat(ctx, shard.Name)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size != shard.Size {
			t.Fatalf("shard %s: on disk %d, planned %d", shard.Name, fi.Size, shard.Size)
		}
		data, err := b.ReadFile(ctx, shard.Name)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := tfrecord.BuildIndex(data)
		if err != nil {
			t.Fatalf("shard %s is not valid TFRecord: %v", shard.Name, err)
		}
		if len(idx) != len(shard.Records) {
			t.Fatalf("shard %s: %d records on disk, planned %d", shard.Name, len(idx), len(shard.Records))
		}
		for i := range idx {
			if idx[i] != shard.Records[i] {
				t.Fatalf("shard %s record %d: disk %+v, plan %+v", shard.Name, i, idx[i], shard.Records[i])
			}
		}
	}
}

func TestMaterializedRecordsDecodeWithCRC(t *testing.T) {
	ctx := context.Background()
	b := storage.NewMemFS("pfs", 0)
	spec := smallSpec()
	spec.NumImages, spec.NumShards = 20, 2
	m, err := Materialize(ctx, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	recID := 0
	for _, shard := range m.Shards {
		data, _ := b.ReadFile(ctx, shard.Name)
		r := tfrecord.NewReader(bytes.NewReader(data))
		for range shard.Records {
			payload, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload, Payload(recID, len(payload))) {
				t.Fatalf("record %d payload mismatch", recID)
			}
			recID++
		}
	}
}

func TestMaterializeTFExamplePayloads(t *testing.T) {
	ctx := context.Background()
	b := storage.NewMemFS("pfs", 0)
	spec := smallSpec()
	spec.TFExamplePayloads = true
	spec.NumImages, spec.NumShards = 20, 2
	m, err := Materialize(ctx, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	recID := 0
	for _, shard := range m.Shards {
		data, _ := b.ReadFile(ctx, shard.Name)
		r := tfrecord.NewReader(bytes.NewReader(data))
		for _, e := range shard.Records {
			payload, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(payload)) != e.Length {
				t.Fatalf("record %d: payload %d bytes, planned %d", recID, len(payload), e.Length)
			}
			ex, err := tfexample.Unmarshal(payload)
			if err != nil {
				t.Fatalf("record %d not a tf.Example: %v", recID, err)
			}
			if got := ex["image/class/label"].Ints[0]; got != int64(recID%1000) {
				t.Fatalf("record %d label = %d", recID, got)
			}
			if len(ex["image/encoded"].Bytes[0]) == 0 {
				t.Fatalf("record %d has no image bytes", recID)
			}
			recID++
		}
	}
}

func TestExamplePayloadExactAndDeterministic(t *testing.T) {
	a, err := ExamplePayload(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExamplePayload(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 500 || !bytes.Equal(a, b) {
		t.Fatalf("len=%d equal=%v", len(a), bytes.Equal(a, b))
	}
}

func TestMaterializeQuotaFailure(t *testing.T) {
	ctx := context.Background()
	b := storage.NewMemFS("tiny", 100)
	if _, err := Materialize(ctx, b, smallSpec()); err == nil {
		t.Fatal("expected quota failure")
	}
}

func TestPayloadDeterministicAndDistinct(t *testing.T) {
	a := Payload(1, 64)
	b := Payload(1, 64)
	c := Payload(2, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("distinct records share payloads")
	}
}

func TestPayloadProperty(t *testing.T) {
	err := quick.Check(func(id uint16, length uint8) bool {
		p := Payload(int(id), int(length))
		return len(p) == int(length)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFronteraSpecs(t *testing.T) {
	ds100, ds200 := Frontera(1)
	if err := ds100.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ds200.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds100.NumImages != 900_000 || ds200.NumImages != 3_000_000 {
		t.Fatalf("image counts: %d / %d", ds100.NumImages, ds200.NumImages)
	}
	if ds100.TotalBytes != 100<<30 || ds200.TotalBytes != 200<<30 {
		t.Fatalf("sizes: %d / %d", ds100.TotalBytes, ds200.TotalBytes)
	}

	small100, small200 := Frontera(1.0 / 64)
	if err := small100.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := small200.Validate(); err != nil {
		t.Fatal(err)
	}
	if small100.NumShards != 25 {
		t.Fatalf("scaled shards = %d", small100.NumShards)
	}
	// Mean image size must be scale-invariant so access granularity and
	// per-image preprocess cost stay faithful at small scales.
	if d := float64(small100.MeanImageBytes()) / float64(ds100.MeanImageBytes()); d < 0.95 || d > 1.05 {
		t.Fatalf("mean image size drifted by %vx under scaling", d)
	}
}

func TestFronteraPanicsOnBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", s)
				}
			}()
			Frontera(s)
		}()
	}
}

func BenchmarkPlan100GiBManifest(b *testing.B) {
	ds100, _ := Frontera(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(ds100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeSmall(b *testing.B) {
	ctx := context.Background()
	spec := smallSpec()
	for i := 0; i < b.N; i++ {
		if _, err := Materialize(ctx, storage.NewMemFS("m", 0), spec); err != nil {
			b.Fatal(err)
		}
	}
}
