// Package dataset builds the synthetic stand-ins for the paper's
// ImageNet-1k derivatives: a 900 k-image / 100 GiB set and a 3 M-image /
// 200 GiB set, both packed into TFRecord shards.
//
// Two builders share one deterministic layout algorithm:
//
//   - Plan computes a Manifest — shard names, shard sizes, and the exact
//     record layout inside each shard — without materialising a byte.
//     The simulation substrate mounts manifests as virtual files.
//   - Materialize writes real TFRecord shards with deterministic
//     payloads into any storage.Backend, for functional tests, examples,
//     and the monarch-mkdataset tool.
//
// Plan and Materialize agree exactly: materialised shard n has the size
// and record offsets the manifest promised.
package dataset

import (
	"context"
	"fmt"

	"monarch/internal/recordio"
	"monarch/internal/rng"
	"monarch/internal/storage"
	"monarch/internal/tfexample"
	"monarch/internal/tfrecord"
)

// Format selects the shard container format.
type Format int

// Supported container formats (§I of the paper names both).
const (
	// TFRecord is TensorFlow's format (the evaluation's choice).
	TFRecord Format = iota
	// RecordIO is MXNet's format.
	RecordIO
)

// String names the format.
func (f Format) String() string {
	switch f {
	case TFRecord:
		return "tfrecord"
	case RecordIO:
		return "recordio"
	default:
		return "unknown"
	}
}

// extension returns the shard file extension for the format.
func (f Format) extension() string {
	if f == RecordIO {
		return "rec"
	}
	return "tfrecord"
}

// RecordEnd returns the on-disk end offset (framing and padding
// included) of a record under this format.
func (f Format) RecordEnd(e tfrecord.Entry) int64 {
	if f == RecordIO {
		return e.Offset + recordio.RecordSize(e.Length)
	}
	return e.End()
}

// Spec describes a synthetic dataset.
type Spec struct {
	// Name prefixes shard file names ("imagenet-100g").
	Name string
	// Format selects the shard container (default TFRecord).
	Format Format
	// NumImages is the total number of records across all shards.
	NumImages int
	// TotalBytes is the approximate on-disk size target, including
	// TFRecord framing.
	TotalBytes int64
	// NumShards is the number of TFRecord files. Images are assigned to
	// shards contiguously, as TF's dataset converters do.
	NumShards int
	// SizeSigma is the lognormal spread of individual image sizes
	// (0 = all images identical).
	SizeSigma float64
	// Seed drives the deterministic size sampling.
	Seed uint64
	// TFExamplePayloads makes Materialize emit real tf.Example protobuf
	// payloads (image bytes + class label + filename) instead of raw
	// keyed patterns. Record sizes are unchanged — the manifest still
	// describes the layout exactly.
	TFExamplePayloads bool
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("dataset: empty name")
	case s.NumImages <= 0:
		return fmt.Errorf("dataset: NumImages = %d", s.NumImages)
	case s.NumShards <= 0:
		return fmt.Errorf("dataset: NumShards = %d", s.NumShards)
	case s.NumShards > s.NumImages:
		return fmt.Errorf("dataset: more shards (%d) than images (%d)", s.NumShards, s.NumImages)
	case s.TotalBytes <= 0:
		return fmt.Errorf("dataset: TotalBytes = %d", s.TotalBytes)
	}
	if s.MeanImageBytes() < 1 {
		return fmt.Errorf("dataset: TotalBytes %d too small for %d images", s.TotalBytes, s.NumImages)
	}
	return nil
}

// MeanImageBytes returns the average payload size implied by the spec,
// accounting for per-record framing overhead.
func (s Spec) MeanImageBytes() int64 {
	return s.TotalBytes/int64(s.NumImages) - tfrecord.Overhead
}

// Shard describes one TFRecord file of the dataset.
type Shard struct {
	// Name is the file name within the dataset directory.
	Name string
	// Size is the on-disk size including framing.
	Size int64
	// Records indexes every record in file order.
	Records tfrecord.Index
}

// Manifest is the fully-resolved layout of a dataset.
type Manifest struct {
	Spec   Spec
	Shards []Shard
}

// TotalBytes returns the exact on-disk footprint of all shards.
func (m *Manifest) TotalBytes() int64 {
	var t int64
	for i := range m.Shards {
		t += m.Shards[i].Size
	}
	return t
}

// NumRecords returns the total record count.
func (m *Manifest) NumRecords() int {
	n := 0
	for i := range m.Shards {
		n += len(m.Shards[i].Records)
	}
	return n
}

// ShardName formats the canonical shard file name, mirroring TF's
// "name.tfrecord-00017-of-01600" convention (extension varies with the
// format).
func ShardName(base string, f Format, index, total int) string {
	return fmt.Sprintf("%s.%s-%05d-of-%05d", base, f.extension(), index, total)
}

// Plan computes the manifest for spec deterministically.
func Plan(spec Spec) (*Manifest, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)
	mean := float64(spec.MeanImageBytes())
	m := &Manifest{Spec: spec, Shards: make([]Shard, spec.NumShards)}

	perShard := spec.NumImages / spec.NumShards
	extra := spec.NumImages % spec.NumShards
	for i := 0; i < spec.NumShards; i++ {
		count := perShard
		if i < extra {
			count++
		}
		shard := Shard{
			Name:    ShardName(spec.Name, spec.Format, i, spec.NumShards),
			Records: make(tfrecord.Index, count),
		}
		off := int64(0)
		for r := 0; r < count; r++ {
			size := imageSize(src, mean, spec.SizeSigma)
			e := tfrecord.Entry{Offset: off, Length: size}
			shard.Records[r] = e
			off = spec.Format.RecordEnd(e)
		}
		shard.Size = off
		m.Shards[i] = shard
	}
	return m, nil
}

// imageSize samples one image payload size: lognormal around mean with
// spread sigma, clamped to at least 1 byte.
func imageSize(src *rng.Source, mean, sigma float64) int64 {
	if sigma <= 0 {
		return int64(mean)
	}
	v := int64(src.LogNormalMean(mean, sigma))
	if v < 1 {
		v = 1
	}
	return v
}

// Materialize writes the dataset's shards into b as real TFRecord files
// and returns the manifest they follow. Payload bytes are deterministic
// per record so reads are verifiable.
func Materialize(ctx context.Context, b storage.Backend, spec Spec) (*Manifest, error) {
	m, err := Plan(spec)
	if err != nil {
		return nil, err
	}
	recID := 0
	for _, shard := range m.Shards {
		data, err := buildShard(spec, shard, &recID)
		if err != nil {
			return nil, err
		}
		if err := b.WriteFile(ctx, shard.Name, data); err != nil {
			return nil, fmt.Errorf("dataset: writing %s: %w", shard.Name, err)
		}
	}
	return m, nil
}

// recordWriter is the framing interface both formats satisfy.
type recordWriter interface {
	Write(data []byte) error
	Flush() error
}

func buildShard(spec Spec, shard Shard, recID *int) ([]byte, error) {
	buf := make(sliceWriter, 0, shard.Size)
	var w recordWriter
	if spec.Format == RecordIO {
		w = recordio.NewWriter(&buf)
	} else {
		w = tfrecord.NewWriter(&buf)
	}
	for _, e := range shard.Records {
		id := *recID
		*recID = id + 1
		var payload []byte
		if spec.TFExamplePayloads {
			var err error
			payload, err = ExamplePayload(id, int(e.Length))
			if err != nil {
				return nil, fmt.Errorf("dataset: shard %s record %d: %w", shard.Name, id, err)
			}
		} else {
			payload = Payload(id, int(e.Length))
		}
		if err := w.Write(payload); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if int64(len(buf)) != shard.Size {
		return nil, fmt.Errorf("dataset: shard %s built %d bytes, planned %d",
			shard.Name, len(buf), shard.Size)
	}
	return buf, nil
}

// Payload returns the deterministic content of record id with the given
// length: a cheap keyed byte pattern, so corruption and misrouted reads
// are detectable without storing originals.
func Payload(id, length int) []byte {
	p := make([]byte, length)
	x := uint64(id)*0x9e3779b97f4a7c15 + 0x3c6ef372fe94f82a
	for i := range p {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}

// ExamplePayload returns record id's content as a serialized
// tf.Example of exactly `length` bytes: deterministic image bytes, the
// class label id%1000 (ImageNet's class count), and a filename.
func ExamplePayload(id, length int) ([]byte, error) {
	return tfexample.MarshalToSize(int64(id%1000), fmt.Sprintf("img-%08d.jpg", id),
		length, byte(id*131+17))
}

// sliceWriter lets tfrecord.Writer append into a preallocated slice.
type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// Frontera reproduces the paper's two evaluation datasets at an
// arbitrary scale in (0, 1]. Scale 1 is the full 100 GiB / 200 GiB pair;
// benches run smaller scales. The shard-size choice (64 MiB vs 32 MiB)
// is our substitution documented in DESIGN.md — the paper does not state
// shard counts.
func Frontera(scale float64) (ds100, ds200 Spec) {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %v out of (0, 1]", scale))
	}
	const gib = int64(1) << 30
	ds100 = Spec{
		Name:       "imagenet-100g",
		NumImages:  scaleInt(900_000, scale),
		TotalBytes: int64(float64(100*gib) * scale),
		NumShards:  scaleInt(1600, scale),
		SizeSigma:  0.35,
		Seed:       100,
	}
	ds200 = Spec{
		Name:       "imagenet-200g",
		NumImages:  scaleInt(3_000_000, scale),
		TotalBytes: int64(float64(200*gib) * scale),
		NumShards:  scaleInt(6400, scale),
		SizeSigma:  0.35,
		Seed:       200,
	}
	return ds100, ds200
}

func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}
