package experiments

import (
	"path/filepath"
	"testing"

	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
	"monarch/internal/trace/replay"
)

// TestTraceCaptureAnalyzeReplay is the round-trip acceptance test: a
// captured run's trace must (a) let the analyzer derive the exact PFS
// data-op count the run itself measured, (b) show per-epoch savings in
// the paper's band, and (c) replay faithfully — byte- and op-exact
// against the trailer.
func TestTraceCaptureAnalyzeReplay(t *testing.T) {
	p := QuickParams()
	path := filepath.Join(t.TempDir(), "capture.jsonl")
	r, err := CaptureTrace(p, path)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete() {
		t.Fatal("capture has no trailer")
	}
	if tr.Header.Clock != "virtual" {
		t.Fatalf("clock = %q, want virtual (sim time)", tr.Header.Clock)
	}
	if tr.Stats["dropped"] != 0 {
		t.Fatalf("capture dropped %d events", tr.Stats["dropped"])
	}

	a := analyze.Analyze(tr, analyze.Options{})
	if len(a.Epochs) != p.Epochs {
		t.Fatalf("analyzer found %d epochs, want %d", len(a.Epochs), p.Epochs)
	}

	// (a) Accounting cross-check: the analyzer's derived PFS op total
	// must equal the op count the run measured at the PFS itself.
	if a.RecordedPFSOps != r.TotalPFSOps() {
		t.Fatalf("trailer pfs_data_ops = %d, run measured %d", a.RecordedPFSOps, r.TotalPFSOps())
	}
	if a.PFSOps != a.RecordedPFSOps {
		t.Fatalf("analyzer derived %d PFS ops, run measured %d", a.PFSOps, a.RecordedPFSOps)
	}

	// (b) The paper's claim: 45–55% fewer PFS I/O operations than the
	// PFS-only baseline on the standard workload.
	if a.Savings < 0.45 || a.Savings > 0.55 {
		t.Fatalf("savings = %.1f%%, want the paper's 45–55%% band", 100*a.Savings)
	}
	// Steady-state epochs save more than the cold first epoch.
	if len(a.Epochs) >= 2 && a.Epochs[1].Savings <= a.Epochs[0].Savings {
		t.Fatalf("epoch 2 savings %.3f not above epoch 1 %.3f",
			a.Epochs[1].Savings, a.Epochs[0].Savings)
	}
	if a.TimeToFirstLocalHit < 0 {
		t.Fatal("no read ever hit a local tier")
	}

	// (c) Faithful replay reproduces the run's statistics exactly.
	rep, err := replay.Run(tr, replay.Options{Mode: replay.Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("replay diverged from capture: %v", rep.Mismatches)
	}
	if rep.PFSOps != a.PFSOps {
		t.Fatalf("replay PFS ops %d != analyzer %d", rep.PFSOps, a.PFSOps)
	}

	// Live replay re-decides placement over the same workload; its
	// placement volume must match the deterministic original.
	live, err := replay.Run(tr, replay.Options{Mode: replay.Live})
	if err != nil {
		t.Fatal(err)
	}
	if live.Placements != r.Monarch.Placements {
		t.Fatalf("live replay placed %d files, original %d", live.Placements, r.Monarch.Placements)
	}
}

// TestTraceCaptureDeterministic locks capture reproducibility: two
// identical runs must produce identical event streams. Latency buckets
// are the one field measured on the host's wall clock (middleware call
// overhead, not simulated service time), so they are masked.
func TestTraceCaptureDeterministic(t *testing.T) {
	p := QuickParams()
	read := func(name string) *trace.Trace {
		path := filepath.Join(t.TempDir(), name)
		if _, err := CaptureTrace(p, path); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := read("a.jsonl"), read("b.jsonl")
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		x.Lat, y.Lat = 0, 0
		if x != y {
			t.Fatalf("event %d differs: %+v vs %+v", i, x, y)
		}
	}
	for k, v := range a.Summary {
		if b.Summary[k] != v {
			t.Fatalf("summary %s differs: %d vs %d", k, v, b.Summary[k])
		}
	}
}

// TestTraceSampledCaptureKeepsStats verifies a sampled capture still
// carries exact run statistics in its trailer (only the event stream
// is thinned).
func TestTraceSampledCaptureKeepsStats(t *testing.T) {
	p := QuickParams()
	p.TraceSample = 8
	path := filepath.Join(t.TempDir(), "sampled.jsonl")
	if _, err := CaptureTrace(p, path); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats["sampled_out"] == 0 {
		t.Fatal("sampling thinned nothing")
	}

	full := filepath.Join(t.TempDir(), "full.jsonl")
	p.TraceSample = 1
	if _, err := CaptureTrace(p, full); err != nil {
		t.Fatal(err)
	}
	ftr, err := trace.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling may not change what the run did — trailer statistics
	// must be identical to the unsampled capture's.
	for k, v := range ftr.Summary {
		if tr.Summary[k] != v {
			t.Fatalf("summary %s: sampled %d, full %d", k, tr.Summary[k], v)
		}
	}
	if int64(len(tr.Events)) >= int64(len(ftr.Events)) {
		t.Fatalf("sampled trace (%d events) not smaller than full (%d)", len(tr.Events), len(ftr.Events))
	}
	// A sampled trace still replays: read checks are skipped, the
	// always-recorded placement stream still verifies.
	rep, err := replay.Run(tr, replay.Options{Mode: replay.Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("sampled replay diverged: %v", rep.Mismatches)
	}
}
