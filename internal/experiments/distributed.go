package experiments

import (
	"fmt"
	"time"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/pool"
	"monarch/internal/rng"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/train"
)

// ShardingMode selects how a distributed run assigns shards to nodes.
type ShardingMode int

const (
	// ShardNone replicates the whole dataset on every node — the
	// "multiple concurrent jobs against one PFS" scenario of the
	// paper's introduction.
	ShardNone ShardingMode = iota
	// ShardSticky partitions shards node-wise once and keeps the
	// assignment across epochs, so per-node caches stay valid.
	ShardSticky
	// ShardReshuffled draws a fresh global partition every epoch
	// (PyTorch DistributedSampler semantics), so a node's cached shards
	// mostly belong to *other* nodes next epoch.
	ShardReshuffled
)

// String names the mode.
func (s ShardingMode) String() string {
	switch s {
	case ShardNone:
		return "replicated"
	case ShardSticky:
		return "sticky"
	case ShardReshuffled:
		return "reshuffled"
	default:
		return "unknown"
	}
}

// DistResult summarises one distributed run.
type DistResult struct {
	Nodes int
	// JobTime is the slowest node's total training time.
	JobTime time.Duration
	// NodeTimes are per-node totals.
	NodeTimes []time.Duration
	// PFSOps / PFSBytes are totals against the shared PFS.
	PFSOps   int64
	PFSBytes int64
	// Placements and Evictions aggregate across nodes.
	Placements int64
}

// selector builds a pipeline shard selector for one node under a mode.
func selector(mode ShardingMode, node, nodes int, seed uint64) func(epoch, total int) []int {
	if mode == ShardNone || nodes == 1 && mode == ShardSticky {
		if mode == ShardNone {
			return nil
		}
	}
	return func(epoch, total int) []int {
		var order []int
		switch mode {
		case ShardSticky:
			// Fixed assignment: shard j belongs to node j%nodes.
			for j := node; j < total; j += nodes {
				order = append(order, j)
			}
		case ShardReshuffled:
			// One global permutation per epoch, shared by all nodes,
			// sliced round-robin.
			perm := rng.New(seed + uint64(epoch)*0x9e3779b9).Perm(total)
			for pos := node; pos < total; pos += nodes {
				order = append(order, perm[pos])
			}
		default:
			for j := 0; j < total; j++ {
				order = append(order, j)
			}
		}
		return order
	}
}

// RunDistributed executes one seeded multi-node run: `nodes` compute
// nodes, each with its own SSD tier (and MONARCH instance when
// useMonarch is set), all hammering one shared Lustre. Nodes
// synchronise at epoch boundaries, approximating data-parallel
// training's per-step barrier at the granularity the experiment
// measures.
func RunDistributed(man *dataset.Manifest, p Params, nodes int, mode ShardingMode,
	useMonarch bool, seed uint64) (DistResult, error) {
	if nodes <= 0 {
		return DistResult{}, fmt.Errorf("experiments: nodes = %d", nodes)
	}
	mdl, err := models.ByName("lenet")
	if err != nil {
		return DistResult{}, err
	}
	env := sim.NewEnv(seed)
	defer env.Close()

	// One shared PFS.
	lustreDev := simstore.NewDevice(env, p.Lustre)
	if p.UseInterference {
		lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
	}
	lustreStore := simstore.NewStore(lustreDev, "lustre", 0)
	for i := range man.Shards {
		lustreStore.AddFile(man.Shards[i].Name, man.Shards[i].Size)
	}
	lustreStore.SetReadOnly(true)
	pfs := storage.NewCounting(lustreStore)

	// Epoch barriers.
	barriers := make([]*sim.WaitGroup, p.Epochs)
	for e := range barriers {
		barriers[e] = sim.NewWaitGroup(env)
		barriers[e].Add(nodes)
	}

	res := DistResult{Nodes: nodes, NodeTimes: make([]time.Duration, nodes)}
	monarchs := make([]*core.Monarch, 0, nodes)
	errs := make([]error, nodes)

	for node := 0; node < nodes; node++ {
		node := node
		var src pipeline.Source = pfs
		var m *core.Monarch
		if useMonarch {
			ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD),
				fmt.Sprintf("ssd-%d", node), p.SSDQuota())
			ssd.CopyChunk = p.CopyChunk
			m, err = core.New(core.Config{
				Levels:        []storage.Backend{ssd, pfs},
				Pool:          pool.NewSimPool(env, fmt.Sprintf("placer-%d", node), p.PlacementThreads),
				FullFileFetch: true,
			})
			if err != nil {
				return DistResult{}, err
			}
			monarchs = append(monarchs, m)
			src = m
		}

		pcfg := p.Pipeline
		pcfg.Manifest = man
		pcfg.Source = src
		pcfg.SelectShards = selector(mode, node, nodes, seed)

		env.Go(fmt.Sprintf("node-%d", node), func(proc *sim.Proc) {
			if m != nil {
				if err := m.Init(proc.Context()); err != nil {
					errs[node] = err
					return
				}
			}
			tr, err := train.Run(proc, train.Config{
				Model:    mdl,
				Node:     p.Node,
				Epochs:   p.Epochs,
				Pipeline: pcfg,
				Seed:     seed + uint64(node)*131,
				OnEpochEnd: func(proc *sim.Proc, epoch int) {
					barriers[epoch].Done()
					barriers[epoch].Wait(proc)
				},
			})
			if err != nil {
				errs[node] = err
				return
			}
			res.NodeTimes[node] = tr.Total
			if tr.Total > res.JobTime {
				res.JobTime = tr.Total
			}
		})
	}
	if err := env.Run(); err != nil {
		return DistResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return DistResult{}, err
		}
	}
	c := pfs.Counts()
	res.PFSOps = c.DataOps()
	res.PFSBytes = c.BytesRead + c.BytesWritten
	for _, m := range monarchs {
		res.Placements += m.Stats().Placements
	}
	return res, nil
}
