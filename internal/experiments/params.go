// Package experiments reproduces the paper's evaluation: the four
// setups (vanilla-lustre, vanilla-local, vanilla-caching, MONARCH), the
// two ImageNet-derived datasets, the three models, and every figure and
// table of §II and §IV, plus the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/pipeline"
	"monarch/internal/simstore"
	"monarch/internal/train"
)

// Params is the calibrated experiment configuration. Defaults reproduce
// the paper's testbed at a configurable scale; DESIGN.md §5 documents
// the calibration.
type Params struct {
	// Scale shrinks dataset bytes, image counts, shard counts and the
	// tier-0 quota proportionally (1 = the paper's full sizes).
	Scale float64
	// Runs is the repetition count (the paper uses 7).
	Runs int
	// Epochs per run (the paper uses 3).
	Epochs int
	// BaseSeed seeds run r with BaseSeed+r.
	BaseSeed uint64

	// SSD and Lustre are the device models; Interference modulates
	// Lustre service times when UseInterference is set.
	SSD             simstore.DeviceSpec
	Lustre          simstore.DeviceSpec
	UseInterference bool
	Interference    simstore.InterferenceConfig

	// SSDQuotaBytes is the usable tier-0 capacity before scaling (the
	// paper's 115 GiB partition).
	SSDQuotaBytes int64

	// Node is the compute-node shape.
	Node train.NodeSpec

	// Pipeline is the tf.data template (Manifest/Source filled per run).
	Pipeline pipeline.Config

	// PlacementThreads is MONARCH's thread-pool size (paper: 6).
	PlacementThreads int
	// CopyChunk is the background fetch request size.
	CopyChunk int64
	// PlacementChunk, when positive, enables MONARCH's chunked
	// placement (core.Config.ChunkSize): background copies land
	// chunk-by-chunk and reads of already-copied ranges hit the fast
	// tier mid-copy. 0 keeps the paper-faithful whole-file copies.
	PlacementChunk int64
	// FullFileFetch toggles the §III-A optimisation (abl-fullfetch).
	FullFileFetch bool
	// PreStage switches MONARCH to placement option i (abl-staging).
	PreStage bool
	// Eviction selects an eviction ablation: "", "lru" or "fifo".
	Eviction string
	// ExtraTier inserts a RAM level above the SSD with the given
	// capacity in bytes before scaling (ext-multitier); 0 disables.
	ExtraTierBytes int64

	// TracePath, when set, captures the MONARCH setup's access trace
	// (one file per run; multi-run sweeps should use Runs=1). The file
	// records every read, placement and chunk copy on the simulated
	// clock, replayable with monarch-bench -replay.
	TracePath string
	// TraceSample keeps 1-in-N plain read hits in the trace (≤1 keeps
	// everything; event-worthy records are never sampled out).
	TraceSample int

	// Cache, when non-nil, memoises aggregates across experiments that
	// rerun identical configurations.
	Cache *Cache `json:"-"`
}

// DefaultParams returns the calibrated configuration at the given
// scale.
func DefaultParams(scale float64) Params {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("experiments: scale %v out of (0,1]", scale))
	}
	return Params{
		Scale:            scale,
		Runs:             7,
		Epochs:           3,
		BaseSeed:         1,
		SSD:              simstore.SSDSpec(),
		Lustre:           simstore.LustreSpec(),
		UseInterference:  true,
		Interference:     simstore.DefaultInterference(),
		SSDQuotaBytes:    115 << 30,
		Node:             train.Frontera(),
		Pipeline:         pipeline.DefaultConfig(),
		PlacementThreads: 6,
		CopyChunk:        4 << 20,
		FullFileFetch:    true,
	}
}

// QuickParams returns a configuration small enough for tests and
// benches: reduced scale and 3 runs.
func QuickParams() Params {
	p := DefaultParams(1.0 / 64)
	p.Runs = 3
	return p
}

// SSDQuota returns the scaled tier-0 quota.
func (p Params) SSDQuota() int64 {
	return int64(float64(p.SSDQuotaBytes) * p.Scale)
}

// Datasets returns the scaled evaluation datasets.
func (p Params) Datasets() (ds100, ds200 dataset.Spec) {
	return dataset.Frontera(p.Scale)
}

// ScaledDuration converts a full-scale expectation (seconds at scale 1)
// to this configuration's scale — used when checks compare against the
// paper's absolute numbers.
func (p Params) ScaledDuration(fullScaleSeconds float64) time.Duration {
	return time.Duration(fullScaleSeconds * p.Scale * float64(time.Second))
}
