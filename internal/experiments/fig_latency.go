package experiments

import (
	"context"
	"fmt"

	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/report"
	"monarch/internal/sim"
	"monarch/internal/stats"
	"monarch/internal/train"
)

// latencySource wraps a pipeline source and samples the virtual-time
// latency of every ReadAt the framework issues — the end-to-end view of
// what tiering does to individual preads.
type latencySource struct {
	inner   pipeline.Source
	env     *sim.Env
	samples []float64 // seconds
}

func (l *latencySource) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	start := l.env.Now()
	n, err := l.inner.ReadAt(ctx, name, p, off)
	l.samples = append(l.samples, (l.env.Now() - start).Seconds())
	return n, err
}

// tabLatency reports per-pread latency percentiles for vanilla-lustre
// vs MONARCH. It makes the mechanism behind Figures 3/4 visible at the
// operation level: after placement, the median read no longer pays the
// PFS round-trip, and the tail shrinks because the noisy shared device
// has left the critical path.
func tabLatency() Experiment {
	return Experiment{
		ID:    "tab-latency",
		Title: "Diagnostic — per-pread latency distribution (100 GiB, LeNet, one seed)",
		Paper: "implied by §II/§IV: lower and steadier per-request latency is where the " +
			"epoch-time and variability improvements come from",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			mdl, err := models.ByName("lenet")
			if err != nil {
				return nil, err
			}
			runOnce := func(setup Setup) (all, steady stats.Summary, err error) {
				env := sim.NewEnv(p.BaseSeed)
				defer env.Close()
				r, err := buildRig(env, setup, man, p)
				if err != nil {
					return all, steady, err
				}
				ls := &latencySource{inner: r.source, env: env}
				pcfg := p.Pipeline
				pcfg.Manifest = man
				pcfg.Source = ls

				var epoch1Ops int
				var runErr error
				env.Go("run", func(proc *sim.Proc) {
					if r.init != nil {
						if err := r.init(proc.Context()); err != nil {
							runErr = err
							return
						}
					}
					_, runErr = train.Run(proc, train.Config{
						Model:    mdl,
						Node:     p.Node,
						Epochs:   p.Epochs,
						Pipeline: pcfg,
						Seed:     p.BaseSeed,
						OnEpochEnd: func(_ *sim.Proc, epoch int) {
							if epoch == 0 {
								epoch1Ops = len(ls.samples)
							}
						},
					})
				})
				if err := env.Run(); err != nil {
					return all, steady, err
				}
				if runErr != nil {
					return all, steady, runErr
				}
				all = stats.Summarize(ls.samples)
				steady = stats.Summarize(ls.samples[epoch1Ops:])
				return all, steady, nil
			}

			vAll, vSteady, err := runOnce(VanillaLustre)
			if err != nil {
				return nil, err
			}
			mAll, mSteady, err := runOnce(Monarch)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable("per-pread latency (ms)",
				"setup", "window", "p50", "p90", "p99", "max", "ops")
			add := func(setup, window string, s stats.Summary) {
				t.Add(setup, window,
					fmt.Sprintf("%.2f", s.P50*1e3), fmt.Sprintf("%.2f", s.P90*1e3),
					fmt.Sprintf("%.2f", s.P99*1e3), fmt.Sprintf("%.1f", s.Max*1e3),
					report.Count(int64(s.N)))
			}
			add("vanilla-lustre", "all epochs", vAll)
			add("vanilla-lustre", "epochs 2+", vSteady)
			add("monarch", "all epochs", mAll)
			add("monarch", "epochs 2+", mSteady)
			o.Tables = append(o.Tables, t)

			// The vanilla median is queueing-dependent and varies with
			// the interference draw; require a clear drop, not a fixed
			// ratio.
			o.check("steady-state median latency drops with MONARCH",
				mSteady.P50 < 0.85*vSteady.P50,
				"monarch p50 %.2f ms vs vanilla %.2f ms", mSteady.P50*1e3, vSteady.P50*1e3)
			o.check("steady-state tail latency drops with MONARCH",
				mSteady.P99 < vSteady.P99,
				"monarch p99 %.2f ms vs vanilla %.2f ms", mSteady.P99*1e3, vSteady.P99*1e3)
			o.check("both setups issue the same logical preads",
				within(float64(mAll.N), float64(vAll.N), 0.01),
				"monarch %d vs vanilla %d ops", mAll.N, vAll.N)
			return o, nil
		},
	}
}
