package experiments

import (
	"fmt"
	"io"
	"sync"

	"monarch/internal/dataset"
	"monarch/internal/report"
)

// Check is one shape assertion against the paper's reported behaviour.
// Checks validate orderings and reduction bands, never absolute
// seconds: the substrate is a simulator, not the authors' testbed.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Outcome is what one experiment produces.
type Outcome struct {
	Tables []*report.Table
	Charts []*report.BarChart
	Checks []Check
}

// Failed returns the names of failing checks.
func (o *Outcome) Failed() []string {
	var f []string
	for _, c := range o.Checks {
		if !c.Pass {
			f = append(f, c.Name+": "+c.Detail)
		}
	}
	return f
}

// Render writes tables, charts and check results to w.
func (o *Outcome) Render(w io.Writer) {
	for _, c := range o.Charts {
		c.Render(w)
		fmt.Fprintln(w)
	}
	for _, t := range o.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, c := range o.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s — %s\n", status, c.Name, c.Detail)
	}
}

func (o *Outcome) check(name string, pass bool, format string, args ...any) {
	o.Checks = append(o.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Experiment regenerates one of the paper's figures or tables (or one
// of this reproduction's ablations).
type Experiment struct {
	// ID is the DESIGN.md experiment id ("fig1", "tab-io-ops", ...).
	ID string
	// Title is a human-readable headline.
	Title string
	// Paper summarises what the original reports.
	Paper string
	// Run executes the experiment under p.
	Run func(p Params) (*Outcome, error)
}

// All returns the registry in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		fig1(), tabResourcesMotivation(), fig3(), fig4(), tabIOOps(),
		tabResourcesEval(), tabMetadataInit(),
		ablEviction(), ablThreads(), ablStaging(), ablFullFetch(),
		ablPFSSpeed(), ablCoverage(), ablCompute(), ablReaders(),
		extMultiTier(), extPyTorch(), extDistributed(), extResilience(),
		extChunked(), extPeernet(), extTenancy(), extCheckpoint(),
		traceTimeline(), tabLatency(),
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Cache memoises aggregates across experiments that share
// configurations (fig1 and the motivation resource table, for
// instance). Attach with Params.Cache.
type Cache struct {
	mu sync.Mutex
	m  map[string]*Aggregate
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*Aggregate)} }

func (p Params) cacheKey(setup Setup, model string, spec dataset.Spec) string {
	k := p
	k.Cache = nil
	return fmt.Sprintf("%s|%s|%s|%+v", setup, model, spec.Name, k)
}

// run executes RunMany through the cache when one is attached.
func run(setup Setup, model string, spec dataset.Spec, p Params) (*Aggregate, error) {
	if p.Cache == nil {
		return RunMany(setup, model, spec, p)
	}
	key := p.cacheKey(setup, model, spec)
	p.Cache.mu.Lock()
	agg, ok := p.Cache.m[key]
	p.Cache.mu.Unlock()
	if ok {
		return agg, nil
	}
	agg, err := RunMany(setup, model, spec, p)
	if err != nil {
		return nil, err
	}
	p.Cache.mu.Lock()
	p.Cache.m[key] = agg
	p.Cache.mu.Unlock()
	return agg, nil
}

// matrix runs every (setup, model) combination over one dataset.
type matrix map[Setup]map[string]*Aggregate

func runMatrix(p Params, setups []Setup, modelNames []string, spec dataset.Spec) (matrix, error) {
	out := make(matrix)
	for _, s := range setups {
		out[s] = make(map[string]*Aggregate)
		for _, m := range modelNames {
			agg, err := run(s, m, spec, p)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", s, m, spec.Name, err)
			}
			out[s][m] = agg
		}
	}
	return out, nil
}

// trainingChart renders the per-epoch grouped bars of a Figure 1/3/4
// style plot for one model.
func trainingChart(title string, epochs int, aggs []*Aggregate) *report.BarChart {
	c := report.NewBarChart(title)
	for e := 0; e < epochs; e++ {
		group := fmt.Sprintf("epoch %d", e+1)
		for _, a := range aggs {
			c.Add(group, string(a.Setup), a.EpochTime[e].Mean(), a.EpochTime[e].StdDev(), " s")
		}
	}
	group := "total"
	for _, a := range aggs {
		c.Add(group, string(a.Setup), a.TotalTime.Mean(), a.TotalTime.StdDev(), " s")
	}
	return c
}

// reduction returns 1 - with/without, i.e. the fractional improvement.
func reduction(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 1 - improved/baseline
}

// within reports |a-b| <= tol*max(|a|,|b|).
func within(a, b, tol float64) bool {
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*m
}
