package experiments

import (
	"fmt"

	"monarch/internal/dataset"
	"monarch/internal/report"
)

// ablEviction demonstrates the §III-A design argument: under random
// once-per-epoch access with an undersized tier, eviction policies only
// churn data between tiers and add PFS traffic.
func ablEviction() Experiment {
	return Experiment{
		ID:    "abl-eviction",
		Title: "Ablation — no-eviction vs LRU/FIFO replacement (200 GiB, LeNet)",
		Paper: "§III-A claims a cache-replacement policy would increase inter-tier " +
			"operations and I/O thrashing; MONARCH therefore never evicts",
		Run: func(p Params) (*Outcome, error) {
			_, ds200 := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("eviction ablation (mean over runs)",
				"policy", "total time", "PFS ops", "PFS bytes", "placements", "evictions")

			type row struct {
				policy string
				agg    *Aggregate
				place  float64
				evict  float64
			}
			var rows []row
			for _, policy := range []string{"", "lru", "fifo"} {
				pp := p
				pp.Eviction = policy
				man, err := planFor(ds200)
				if err != nil {
					return nil, err
				}
				var placements, evictions float64
				agg := &Aggregate{Setup: Monarch, Model: "lenet", Dataset: ds200.Name}
				for run := 0; run < pp.Runs; run++ {
					r, err := RunOne(Monarch, "lenet", man, pp, pp.BaseSeed+uint64(run)*7919)
					if err != nil {
						return nil, err
					}
					agg.add(r)
					placements += float64(r.Monarch.Placements) / float64(pp.Runs)
					evictions += float64(r.Monarch.Evictions) / float64(pp.Runs)
				}
				name := policy
				if name == "" {
					name = "none (paper)"
				}
				t.Add(name, report.Seconds(agg.TotalTime.Mean()),
					report.Count(int64(agg.PFSOpTotal.Mean())),
					GiB(agg.PFSBytes.Mean()),
					report.Count(int64(placements)), report.Count(int64(evictions)))
				rows = append(rows, row{policy: name, agg: agg, place: placements, evict: evictions})
			}
			o.Tables = append(o.Tables, t)

			none, lru, fifo := rows[0], rows[1], rows[2]
			o.check("LRU evicts under an undersized tier", lru.evict > 0,
				"%.0f evictions", lru.evict)
			o.check("eviction inflates placements (tier churn)",
				lru.place > 1.5*none.place,
				"lru %.0f vs none %.0f", lru.place, none.place)
			o.check("eviction adds PFS traffic (the paper's I/O trashing)",
				lru.agg.PFSBytes.Mean() > 1.1*none.agg.PFSBytes.Mean() &&
					fifo.agg.PFSBytes.Mean() > 1.1*none.agg.PFSBytes.Mean(),
				"lru %s / fifo %s vs none %s",
				GiB(lru.agg.PFSBytes.Mean()), GiB(fifo.agg.PFSBytes.Mean()),
				GiB(none.agg.PFSBytes.Mean()))
			o.check("eviction never beats no-eviction on training time",
				lru.agg.TotalTime.Mean() >= 0.98*none.agg.TotalTime.Mean(),
				"lru %.1f vs none %.1f", lru.agg.TotalTime.Mean(), none.agg.TotalTime.Mean())
			return o, nil
		},
	}
}

// ablThreads sweeps the placement thread-pool size around the paper's
// configured 6 threads.
func ablThreads() Experiment {
	return Experiment{
		ID:    "abl-threads",
		Title: "Ablation — placement thread-pool size (100 GiB, LeNet)",
		Paper: "the prototype is configured with 6 background placement threads (§IV)",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("thread-pool sweep (mean over runs)",
				"threads", "epoch 1", "total", "PFS ops")
			results := map[int]*Aggregate{}
			for _, n := range []int{1, 2, 6, 12} {
				pp := p
				pp.PlacementThreads = n
				agg, err := RunMany(Monarch, "lenet", ds100, pp)
				if err != nil {
					return nil, err
				}
				results[n] = agg
				t.Add(fmt.Sprintf("%d", n),
					report.Seconds(agg.EpochTime[0].Mean()),
					report.Seconds(agg.TotalTime.Mean()),
					report.Count(int64(agg.PFSOpTotal.Mean())))
			}
			o.Tables = append(o.Tables, t)
			o.check("more placement threads do not slow epoch 1",
				results[6].EpochTime[0].Mean() <= 1.10*results[1].EpochTime[0].Mean(),
				"6 threads %.1f vs 1 thread %.1f",
				results[6].EpochTime[0].Mean(), results[1].EpochTime[0].Mean())
			o.check("returns diminish beyond the paper's 6 threads",
				within(results[12].TotalTime.Mean(), results[6].TotalTime.Mean(), 0.10),
				"12 threads %.1f vs 6 threads %.1f",
				results[12].TotalTime.Mean(), results[6].TotalTime.Mean())
			return o, nil
		},
	}
}

// ablStaging compares the paper's two placement-timing options.
func ablStaging() Experiment {
	return Experiment{
		ID:    "abl-staging",
		Title: "Ablation — pre-training staging vs place-on-first-read (100 GiB, LeNet)",
		Paper: "§III-A picks option ii (place during epoch 1) to avoid delaying training " +
			"start; both options issue the same PFS operations",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			onRead, err := run(Monarch, "lenet", ds100, p)
			if err != nil {
				return nil, err
			}
			pp := p
			pp.PreStage = true
			pre, err := RunMany(Monarch, "lenet", ds100, pp)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			t := report.NewTable("staging ablation (mean over runs)",
				"mode", "staging/init", "epoch 1", "total train", "job total", "PFS ops")
			t.Add("on-first-read", report.Seconds(onRead.InitTime.Mean()),
				report.Seconds(onRead.EpochTime[0].Mean()),
				report.Seconds(onRead.TotalTime.Mean()),
				report.Seconds(onRead.InitTime.Mean()+onRead.TotalTime.Mean()),
				report.Count(int64(onRead.PFSOpTotal.Mean())))
			t.Add("pre-training", report.Seconds(pre.InitTime.Mean()),
				report.Seconds(pre.EpochTime[0].Mean()),
				report.Seconds(pre.TotalTime.Mean()),
				report.Seconds(pre.InitTime.Mean()+pre.TotalTime.Mean()),
				report.Count(int64(pre.PFSOpTotal.Mean())))
			o.Tables = append(o.Tables, t)

			o.check("pre-staging delays training start (paper's reason to reject it)",
				pre.InitTime.Mean() > 5*onRead.InitTime.Mean(),
				"pre-stage init %.1f s vs %.1f s", pre.InitTime.Mean(), onRead.InitTime.Mean())
			o.check("pre-staged epoch 1 runs at local speed",
				pre.EpochTime[0].Mean() < 0.8*onRead.EpochTime[0].Mean(),
				"pre %.1f vs on-read %.1f", pre.EpochTime[0].Mean(), onRead.EpochTime[0].Mean())
			jobOnRead := onRead.InitTime.Mean() + onRead.TotalTime.Mean()
			jobPre := pre.InitTime.Mean() + pre.TotalTime.Mean()
			o.check("whole-job time favours on-first-read (overlap wins)",
				jobOnRead <= 1.05*jobPre,
				"on-read %.1f vs pre %.1f", jobOnRead, jobPre)
			return o, nil
		},
	}
}

// ablFullFetch toggles the §III-A full-file fetch optimisation.
func ablFullFetch() Experiment {
	return Experiment{
		ID:    "abl-fullfetch",
		Title: "Ablation — full-file background fetch on/off (100 GiB, LeNet)",
		Paper: "§III-A: on a partial read MONARCH still fetches the whole file so " +
			"subsequent requests hit the fast tier; this is what makes its epoch 1 " +
			"faster than vanilla-lustre's",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			on, err := run(Monarch, "lenet", ds100, p)
			if err != nil {
				return nil, err
			}
			pp := p
			pp.FullFileFetch = false
			off, err := RunMany(Monarch, "lenet", ds100, pp)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			t := report.NewTable("full-fetch ablation (mean over runs)",
				"fetch", "epoch 1", "total", "PFS ops", "placed bytes")
			t.Add("on (paper)", report.Seconds(on.EpochTime[0].Mean()),
				report.Seconds(on.TotalTime.Mean()),
				report.Count(int64(on.PFSOpTotal.Mean())), GiB(on.Cached.Mean()))
			t.Add("off", report.Seconds(off.EpochTime[0].Mean()),
				report.Seconds(off.TotalTime.Mean()),
				report.Count(int64(off.PFSOpTotal.Mean())), GiB(off.Cached.Mean()))
			o.Tables = append(o.Tables, t)

			o.check("without full fetch nothing is placed (256 KiB reads never cover a shard)",
				off.Cached.Mean() == 0, "placed %s", GiB(off.Cached.Mean()))
			o.check("full fetch is what cuts training time",
				on.TotalTime.Mean() < 0.8*off.TotalTime.Mean(),
				"on %.1f vs off %.1f", on.TotalTime.Mean(), off.TotalTime.Mean())
			return o, nil
		},
	}
}

// extMultiTier exercises the paper's §VI future-work direction: a RAM
// level above the SSD.
func extMultiTier() Experiment {
	return Experiment{
		ID:    "ext-multitier",
		Title: "Extension — three-level hierarchy (RAM + SSD + PFS), 200 GiB, LeNet",
		Paper: "§VI proposes hierarchies with additional levels (persistent memory, RAM); " +
			"a third level should extend coverage of the oversized dataset",
		Run: func(p Params) (*Outcome, error) {
			_, ds200 := p.Datasets()
			two, err := run(Monarch, "lenet", ds200, p)
			if err != nil {
				return nil, err
			}
			pp := p
			pp.ExtraTierBytes = 48 << 30 // the node's RAM set-aside
			three, err := RunMany(Monarch, "lenet", ds200, pp)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			t := report.NewTable("multi-tier extension (mean over runs)",
				"hierarchy", "total time", "PFS ops", "placed bytes")
			t.Add("ssd+pfs", report.Seconds(two.TotalTime.Mean()),
				report.Count(int64(two.PFSOpTotal.Mean())), GiB(two.Cached.Mean()))
			t.Add("ram+ssd+pfs", report.Seconds(three.TotalTime.Mean()),
				report.Count(int64(three.PFSOpTotal.Mean())), GiB(three.Cached.Mean()))
			o.Tables = append(o.Tables, t)

			o.check("extra tier extends placement coverage",
				three.Cached.Mean() > 1.2*two.Cached.Mean(),
				"3-level %s vs 2-level %s", GiB(three.Cached.Mean()), GiB(two.Cached.Mean()))
			o.check("extra tier reduces PFS traffic further",
				three.PFSOpTotal.Mean() < two.PFSOpTotal.Mean(),
				"%.0f vs %.0f ops", three.PFSOpTotal.Mean(), two.PFSOpTotal.Mean())
			o.check("extra tier does not slow training",
				three.TotalTime.Mean() <= 1.05*two.TotalTime.Mean(),
				"3-level %.1f vs 2-level %.1f", three.TotalTime.Mean(), two.TotalTime.Mean())
			return o, nil
		},
	}
}

// planFor resolves a dataset spec to its manifest for experiments that
// need per-run results rather than aggregates.
func planFor(spec dataset.Spec) (*dataset.Manifest, error) { return dataset.Plan(spec) }
