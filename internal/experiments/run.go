package experiments

import (
	"fmt"
	"time"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/sim"
	"monarch/internal/stats"
	"monarch/internal/train"
)

// RunResult is one simulated training run's measurements.
type RunResult struct {
	Setup   Setup
	Model   string
	Dataset string
	Train   train.Result
	// InitDuration is the metadata-container build time (MONARCH only).
	InitDuration time.Duration
	// PFSOpsPerEpoch / PFSBytesPerEpoch are the shared file system's
	// data-operation and byte counts attributed per epoch (including
	// MONARCH's background fetch traffic).
	PFSOpsPerEpoch   []int64
	PFSBytesPerEpoch []int64
	// PFSMetaOps counts metadata operations against the PFS.
	PFSMetaOps int64
	// Monarch is the middleware's final counters (zero value for
	// baselines).
	Monarch core.Stats
	// CachedBytes is the bytes resident on local tiers when the run
	// ended (placement or caching coverage).
	CachedBytes int64
	// MemoryEstimate approximates resident memory (pipeline buffers +
	// framework overhead), the paper's flat ~10 GiB line.
	MemoryEstimate int64
}

// TotalPFSOps sums data ops across epochs.
func (r RunResult) TotalPFSOps() int64 {
	var t int64
	for _, v := range r.PFSOpsPerEpoch {
		t += v
	}
	return t
}

// frameworkMemOverhead approximates the DL framework's resident set
// outside pipeline buffers (weights, runtime, CUDA context), scaled so
// the reported total sits near the paper's ~10 GiB.
const frameworkMemOverhead = int64(9)<<30 + 256<<20

// RunOne executes one seeded run of (setup, model name, dataset spec).
func RunOne(setup Setup, model string, man *dataset.Manifest, p Params, seed uint64) (RunResult, error) {
	mdl, err := modelByName(model)
	if err != nil {
		return RunResult{}, err
	}
	return RunOneModel(setup, mdl, man, p, seed)
}

// RunOneModel is RunOne with an explicit cost profile, for sweeps that
// scale a model rather than pick a named one.
func RunOneModel(setup Setup, mdl models.Model, man *dataset.Manifest, p Params, seed uint64) (RunResult, error) {
	env := sim.NewEnv(seed)
	defer env.Close()

	r, err := buildRig(env, setup, man, p)
	if err != nil {
		return RunResult{}, err
	}

	res := RunResult{Setup: setup, Model: mdl.Name, Dataset: man.Spec.Name}
	pcfg := p.Pipeline
	pcfg.Manifest = man
	pcfg.Source = r.source

	var prevOps, prevBytes int64
	snapshot := func(epoch int) {
		if r.monarch != nil {
			// Epoch boundary into the access trace (no-op without
			// Params.TracePath) before the counters are cut, so the
			// analyzer's per-epoch attribution matches the snapshots.
			r.monarch.MarkTraceEpoch(epoch)
		}
		if r.pfs == nil {
			res.PFSOpsPerEpoch = append(res.PFSOpsPerEpoch, 0)
			res.PFSBytesPerEpoch = append(res.PFSBytesPerEpoch, 0)
			return
		}
		c := r.pfs.Counts()
		ops, bytes := c.DataOps(), c.BytesRead+c.BytesWritten
		res.PFSOpsPerEpoch = append(res.PFSOpsPerEpoch, ops-prevOps)
		res.PFSBytesPerEpoch = append(res.PFSBytesPerEpoch, bytes-prevBytes)
		prevOps, prevBytes = ops, bytes
	}

	var trainErr error
	env.Go("run", func(proc *sim.Proc) {
		if r.init != nil {
			start := env.Now()
			if err := r.init(proc.Context()); err != nil {
				trainErr = err
				return
			}
			res.InitDuration = (env.Now() - start).Duration()
			// The namespace build's PFS traffic belongs to init, not
			// epoch 0.
			if r.pfs != nil {
				c := r.pfs.Counts()
				prevOps, prevBytes = c.DataOps(), c.BytesRead+c.BytesWritten
			}
		}
		tr, err := train.Run(proc, train.Config{
			Model:      mdl,
			Node:       p.Node,
			Epochs:     p.Epochs,
			Pipeline:   pcfg,
			Seed:       seed,
			OnEpochEnd: func(_ *sim.Proc, epoch int) { snapshot(epoch + 1) },
		})
		if err != nil {
			trainErr = err
			return
		}
		res.Train = tr
	})
	if err := env.Run(); err != nil {
		return RunResult{}, fmt.Errorf("experiments: %s/%s: %w", setup, mdl.Name, err)
	}
	if trainErr != nil {
		return RunResult{}, fmt.Errorf("experiments: %s/%s: %w", setup, mdl.Name, trainErr)
	}

	if r.pfs != nil {
		res.PFSMetaOps = r.pfs.Counts().MetadataOps()
	}
	if r.monarch != nil {
		res.Monarch = r.monarch.Stats()
		res.CachedBytes = res.Monarch.PlacedBytes
		if tr := r.monarch.Tracer(); tr != nil {
			// Record the measured PFS data-op count in the trailer so the
			// trace analyzer can cross-check its derived total, then seal
			// the trace file.
			if r.pfs != nil {
				tr.AddSummary(map[string]int64{"pfs_data_ops": r.pfs.Counts().DataOps()})
			}
			r.monarch.Close()
		}
	}
	if cs, ok := r.source.(*cachingSource); ok {
		res.CachedBytes = cs.cachedBytes()
	}
	res.MemoryEstimate = pcfg.BufferBytes(man.Spec.MeanImageBytes()) + frameworkMemOverhead
	return res, nil
}

// Aggregate accumulates repeated runs of one configuration.
type Aggregate struct {
	Setup   Setup
	Model   string
	Dataset string
	Runs    int

	EpochTime  []stats.Welford // seconds, indexed by epoch
	TotalTime  stats.Welford   // seconds
	CPUUtil    stats.Welford   // [0,1]
	GPUUtil    stats.Welford
	PFSOps     []stats.Welford // per epoch
	PFSOpTotal stats.Welford
	PFSBytes   stats.Welford // whole-run bytes moved to/from the PFS
	InitTime   stats.Welford // seconds
	Cached     stats.Welford // bytes
	Memory     stats.Welford // bytes
}

func (a *Aggregate) add(r RunResult) {
	a.Runs++
	for len(a.EpochTime) < len(r.Train.Epochs) {
		a.EpochTime = append(a.EpochTime, stats.Welford{})
	}
	for i, e := range r.Train.Epochs {
		a.EpochTime[i].Add(e.Duration.Seconds())
	}
	a.TotalTime.Add(r.Train.Total.Seconds())
	a.CPUUtil.Add(r.Train.CPUUtil)
	a.GPUUtil.Add(r.Train.GPUUtil)
	for len(a.PFSOps) < len(r.PFSOpsPerEpoch) {
		a.PFSOps = append(a.PFSOps, stats.Welford{})
	}
	for i, v := range r.PFSOpsPerEpoch {
		a.PFSOps[i].Add(float64(v))
	}
	a.PFSOpTotal.Add(float64(r.TotalPFSOps()))
	var pfsBytes int64
	for _, v := range r.PFSBytesPerEpoch {
		pfsBytes += v
	}
	a.PFSBytes.Add(float64(pfsBytes))
	a.InitTime.Add(r.InitDuration.Seconds())
	a.Cached.Add(float64(r.CachedBytes))
	a.Memory.Add(float64(r.MemoryEstimate))
}

// RunMany executes p.Runs seeded repetitions and aggregates them.
func RunMany(setup Setup, model string, spec dataset.Spec, p Params) (*Aggregate, error) {
	man, err := dataset.Plan(spec)
	if err != nil {
		return nil, err
	}
	agg := &Aggregate{Setup: setup, Model: model, Dataset: spec.Name}
	for run := 0; run < p.Runs; run++ {
		r, err := RunOne(setup, model, man, p, p.BaseSeed+uint64(run)*7919)
		if err != nil {
			return nil, err
		}
		agg.add(r)
	}
	return agg, nil
}

// modelByName resolves the paper's model names.
func modelByName(name string) (models.Model, error) { return models.ByName(name) }

// GiB formats bytes as GiB with one decimal.
func GiB(b float64) string { return fmt.Sprintf("%.1f GiB", b/float64(int64(1)<<30)) }

// quotaCovered returns what fraction of the dataset fits the tier-0
// quota — the geometric expectation for MONARCH's steady-state PFS
// traffic on oversized datasets.
func quotaCovered(man *dataset.Manifest, quota int64) float64 {
	total := man.TotalBytes()
	if total == 0 {
		return 0
	}
	if quota <= 0 || quota >= total {
		return 1
	}
	return float64(quota) / float64(total)
}
