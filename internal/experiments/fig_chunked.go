package experiments

import (
	"context"
	"time"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/train"
)

// firstHitSource wraps the middleware as a pipeline source and records
// the virtual time of the first read served from an upper tier — the
// "time to first local hit" that chunked placement is built to shrink.
// The stats snapshot is only taken until the first hit is found, so the
// wrapper adds no steady-state cost.
type firstHitSource struct {
	m        *core.Monarch
	env      *sim.Env
	start    sim.Time
	found    bool
	firstHit time.Duration
}

var _ pipeline.Source = (*firstHitSource)(nil)

func (s *firstHitSource) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	n, err := s.m.ReadAt(ctx, name, p, off)
	if err == nil && !s.found {
		st := s.m.Stats()
		var upper int64
		for i := 0; i < len(st.ReadsServed)-1; i++ {
			upper += st.ReadsServed[i]
		}
		if upper > 0 {
			s.found = true
			s.firstHit = (s.env.Now() - s.start).Duration()
		}
	}
	return n, err
}

// extChunked compares the paper's whole-file placement against the
// chunked fan-out (Config.ChunkSize) on the 100 GiB dataset: with
// whole-file copies a shard contributes zero fast-tier hits until its
// entire copy lands — exactly when the loaded PFS is slowest — while
// chunked placement serves already-copied ranges mid-copy, so the
// first epoch starts hitting the SSD while staging is still in flight.
func extChunked() Experiment {
	return Experiment{
		ID:    "ext-chunked",
		Title: "Extension — chunked placement: time to first local hit (100 GiB, LeNet)",
		Paper: "beyond §III-A: the paper's placement handler copies whole files, so early-epoch " +
			"reads see no fast-tier hits until entire shards land; chunk-striped staging " +
			"(Hoard-style) serves cached ranges while the copy is in flight",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			mdl, err := models.ByName("lenet")
			if err != nil {
				return nil, err
			}
			chunk := p.PlacementChunk
			if chunk <= 0 {
				chunk = p.CopyChunk
			}

			// runOnce trains with the given placement chunk size (0 =
			// whole-file) and reports the run, the middleware counters,
			// and the time of the first upper-tier hit.
			runOnce := func(chunkSize int64, seed uint64) (train.Result, core.Stats, time.Duration, error) {
				env := sim.NewEnv(seed)
				defer env.Close()
				lustreDev := simstore.NewDevice(env, p.Lustre)
				if p.UseInterference {
					lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
				}
				lustre := simstore.NewStore(lustreDev, "lustre", 0)
				for i := range man.Shards {
					lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
				}
				lustre.SetReadOnly(true)
				pfs := storage.NewCounting(lustre)
				ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
				ssd.CopyChunk = p.CopyChunk
				m, err := core.New(core.Config{
					Levels:        []storage.Backend{ssd, pfs},
					Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
					FullFileFetch: true,
					ChunkSize:     chunkSize,
				})
				if err != nil {
					return train.Result{}, core.Stats{}, 0, err
				}
				probe := &firstHitSource{m: m, env: env}
				pcfg := p.Pipeline
				pcfg.Manifest = man
				pcfg.Source = probe
				var res train.Result
				var runErr error
				env.Go("run", func(proc *sim.Proc) {
					if err := m.Init(proc.Context()); err != nil {
						runErr = err
						return
					}
					probe.start = env.Now()
					res, runErr = train.Run(proc, train.Config{
						Model:    mdl,
						Node:     p.Node,
						Epochs:   p.Epochs,
						Pipeline: pcfg,
						Seed:     seed,
					})
				})
				if err := env.Run(); err != nil {
					return train.Result{}, core.Stats{}, 0, err
				}
				if runErr != nil {
					return train.Result{}, core.Stats{}, 0, runErr
				}
				return res, m.Stats(), probe.firstHit, nil
			}

			whole, wst, wholeHit, err := runOnce(0, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			chunked, cst, chunkedHit, err := runOnce(chunk, p.BaseSeed)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable("whole-file vs chunked placement (single seed)",
				"placement", "first local hit", "epoch 1", "total",
				"partial hits", "partial-hit bytes", "chunks placed")
			t.Add("whole-file",
				report.Seconds(wholeHit.Seconds()),
				report.Seconds(whole.Epochs[0].Duration.Seconds()),
				report.Seconds(whole.Total.Seconds()),
				report.Count(wst.PartialHits),
				GiB(float64(wst.PartialHitBytes)),
				report.Count(wst.ChunkPlacements))
			t.Add("chunked",
				report.Seconds(chunkedHit.Seconds()),
				report.Seconds(chunked.Epochs[0].Duration.Seconds()),
				report.Seconds(chunked.Total.Seconds()),
				report.Count(cst.PartialHits),
				GiB(float64(cst.PartialHitBytes)),
				report.Count(cst.ChunkPlacements))
			o.Tables = append(o.Tables, t)

			records := 0
			for _, e := range chunked.Epochs {
				records += e.Records
			}
			o.check("chunked run delivers every record",
				records == man.NumRecords()*p.Epochs,
				"%d records delivered of %d", records, man.NumRecords()*p.Epochs)
			o.check("chunked placement serves partial hits mid-copy",
				cst.PartialHits > 0 && cst.ChunkPlacements > 0,
				"%d partial hits over %d chunks", cst.PartialHits, cst.ChunkPlacements)
			o.check("whole-file mode stays chunk-free (paper-faithful default)",
				wst.PartialHits == 0 && wst.ChunkPlacements == 0,
				"%d partial hits, %d chunks", wst.PartialHits, wst.ChunkPlacements)
			o.check("first local hit arrives earlier with chunked placement",
				chunkedHit < wholeHit,
				"chunked %.2fs vs whole-file %.2fs", chunkedHit.Seconds(), wholeHit.Seconds())
			o.check("both modes place the same data",
				cst.PlacedBytes == wst.PlacedBytes,
				"chunked %d B vs whole-file %d B", cst.PlacedBytes, wst.PlacedBytes)
			return o, nil
		},
	}
}
