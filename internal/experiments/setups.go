package experiments

import (
	"context"
	"fmt"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/pipeline"
	"monarch/internal/pool"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
)

// Setup names one of the evaluation's storage configurations.
type Setup string

// The paper's four setups (§II and §IV).
const (
	VanillaLustre  Setup = "vanilla-lustre"
	VanillaLocal   Setup = "vanilla-local"
	VanillaCaching Setup = "vanilla-caching"
	Monarch        Setup = "monarch"
)

// AllSetups lists the setups in the paper's presentation order.
func AllSetups() []Setup {
	return []Setup{VanillaLustre, VanillaLocal, VanillaCaching, Monarch}
}

// rig is one run's assembled storage stack.
type rig struct {
	source  pipeline.Source
	pfs     *storage.Counting // nil for vanilla-local
	monarch *core.Monarch     // nil unless Monarch setup
	// init performs setup-time work that the experiment wants timed
	// (MONARCH's metadata-container build); it may be nil.
	init func(ctx context.Context) error
}

// buildRig assembles the storage stack for setup inside env. The
// manifest's shards are mounted on whichever store plays the dataset
// source.
func buildRig(env *sim.Env, setup Setup, man *dataset.Manifest, p Params) (*rig, error) {
	mount := func(st *simstore.Store) {
		for i := range man.Shards {
			st.AddFile(man.Shards[i].Name, man.Shards[i].Size)
		}
	}
	newLustre := func() *simstore.Store {
		dev := simstore.NewDevice(env, p.Lustre)
		if p.UseInterference {
			dev.SetInterference(simstore.NewInterference(env, p.Interference))
		}
		st := simstore.NewStore(dev, "lustre", 0)
		mount(st)
		st.SetReadOnly(true)
		return st
	}

	switch setup {
	case VanillaLustre:
		pfs := storage.NewCounting(newLustre())
		return &rig{source: pfs, pfs: pfs}, nil

	case VanillaLocal:
		// The dataset is staged on the local SSD before the job (the
		// paper's manual best case). It must fit.
		if man.TotalBytes() > p.SSDQuota() {
			return nil, fmt.Errorf("experiments: %s: dataset (%d B) exceeds local quota (%d B)",
				setup, man.TotalBytes(), p.SSDQuota())
		}
		ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", 0)
		mount(ssd)
		return &rig{source: ssd}, nil

	case VanillaCaching:
		// TensorFlow's Dataset.cache(local_path): epoch 1 streams from
		// Lustre while writing through to the SSD; later epochs read
		// the SSD copy. Requires the dataset to fit (§II summary).
		if man.TotalBytes() > p.SSDQuota() {
			return nil, fmt.Errorf("experiments: %s: dataset (%d B) exceeds local quota (%d B)",
				setup, man.TotalBytes(), p.SSDQuota())
		}
		pfs := storage.NewCounting(newLustre())
		ssdDev := simstore.NewDevice(env, p.SSD)
		src := newCachingSource(env, pfs, ssdDev, man)
		return &rig{source: src, pfs: pfs}, nil

	case Monarch:
		pfs := storage.NewCounting(newLustre())
		tiers := []storage.Backend{}
		if p.ExtraTierBytes > 0 {
			ram := simstore.NewStore(simstore.NewDevice(env, simstore.RAMSpec()),
				"ram", int64(float64(p.ExtraTierBytes)*p.Scale))
			ram.CopyChunk = p.CopyChunk
			tiers = append(tiers, ram)
		}
		ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
		ssd.CopyChunk = p.CopyChunk
		tiers = append(tiers, ssd, pfs)

		var evict core.EvictionPolicy
		switch p.Eviction {
		case "":
		case "lru":
			evict = core.NewLRU()
		case "fifo":
			evict = core.NewFIFO()
		default:
			return nil, fmt.Errorf("experiments: unknown eviction policy %q", p.Eviction)
		}
		staging := core.StageOnFirstRead
		if p.PreStage {
			staging = core.StagePreTraining
		}
		cfg := core.Config{
			Levels:        tiers,
			Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
			FullFileFetch: p.FullFileFetch,
			ChunkSize:     p.PlacementChunk,
			Staging:       staging,
			Eviction:      evict,
		}
		if p.TracePath != "" {
			cfg.TracePath = p.TracePath
			cfg.TraceSample = p.TraceSample
			// Trace timestamps follow the simulated clock, so a replay
			// can re-drive the run deterministically.
			cfg.TraceClock = func() int64 { return int64(env.Now()) }
			cfg.TraceMeta = map[string]string{
				"scale":             fmt.Sprintf("%g", p.Scale),
				"dataset":           man.Spec.Name,
				"copy_chunk":        fmt.Sprintf("%d", p.CopyChunk),
				"placement_threads": fmt.Sprintf("%d", p.PlacementThreads),
			}
		}
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return &rig{
			source:  m,
			pfs:     pfs,
			monarch: m,
			init:    m.Init,
		}, nil

	default:
		return nil, fmt.Errorf("experiments: unknown setup %q", setup)
	}
}

// cachingSource reproduces tf.data's cache-to-local-file stage: reads
// of a not-yet-cached shard go to the PFS and are synchronously written
// through to the local device; once a shard is fully cached its reads
// hit the SSD. Shards are read sequentially by the pipeline, so
// byte-progress tracking per shard is exact.
type cachingSource struct {
	pfs      storage.Backend
	ssd      *simstore.Device
	writer   *sim.Resource // tf.data's cache stage writes serially
	sizes    map[string]int64
	progress map[string]int64
}

func newCachingSource(env *sim.Env, pfs storage.Backend, ssd *simstore.Device, man *dataset.Manifest) *cachingSource {
	c := &cachingSource{
		pfs:      pfs,
		ssd:      ssd,
		writer:   sim.NewResource(env, "cache-writer", 1),
		sizes:    make(map[string]int64, len(man.Shards)),
		progress: make(map[string]int64, len(man.Shards)),
	}
	for i := range man.Shards {
		c.sizes[man.Shards[i].Name] = man.Shards[i].Size
	}
	return c
}

func (c *cachingSource) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	size, ok := c.sizes[name]
	if !ok {
		return 0, fmt.Errorf("caching source: unknown shard %q", name)
	}
	if c.progress[name] >= size {
		// Cache hit: serve from the local device.
		proc := sim.MustProc(ctx)
		n := size - off
		if n <= 0 {
			return 0, nil
		}
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		c.ssd.Read(proc, n)
		return int(n), nil
	}
	n, err := c.pfs.ReadAt(ctx, name, p, off)
	if err != nil || n == 0 {
		return n, err
	}
	// Write-through to the cache file, in the reader's path and through
	// the cache stage's single writer — this is the extra epoch-1 cost
	// the paper measures for vanilla-caching.
	proc := sim.MustProc(ctx)
	c.writer.Acquire(proc, 1)
	c.ssd.Write(proc, int64(n))
	c.writer.Release(1)
	if off+int64(n) > c.progress[name] {
		c.progress[name] = off + int64(n)
	}
	return n, err
}

// cachedBytes reports how much of the dataset the cache holds.
func (c *cachingSource) cachedBytes() int64 {
	var t int64
	for name, prog := range c.progress {
		if prog >= c.sizes[name] {
			t += c.sizes[name]
		}
	}
	return t
}
