package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"monarch/internal/core"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/storage"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

// slowPFS injects a fixed per-operation latency into the write side of
// a backend, standing in for a parallel filesystem whose metadata and
// data paths are orders of magnitude slower than node-local flash.
// Reads pass through untouched: both checkpoint modes read the
// training set identically, so only write latency separates them.
type slowPFS struct {
	storage.Backend
	lat time.Duration
}

func (s *slowPFS) WriteFile(ctx context.Context, name string, data []byte) error {
	time.Sleep(s.lat)
	return s.Backend.WriteFile(ctx, name, data)
}

func (s *slowPFS) Allocate(ctx context.Context, name string, size int64) error {
	rw, ok := s.Backend.(storage.RangeWriter)
	if !ok {
		return fmt.Errorf("slowPFS: %s: %w", s.Backend.Name(), errors.ErrUnsupported)
	}
	time.Sleep(s.lat)
	return rw.Allocate(ctx, name, size)
}

func (s *slowPFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	rw, ok := s.Backend.(storage.RangeWriter)
	if !ok {
		return 0, fmt.Errorf("slowPFS: %s: %w", s.Backend.Name(), errors.ErrUnsupported)
	}
	time.Sleep(s.lat)
	return rw.WriteAt(ctx, name, p, off)
}

// checkpointResult is one durability mode's outcome.
type checkpointResult struct {
	stall    time.Duration // foreground time inside checkpoint sections
	total    time.Duration // whole run, flush drain included
	stats    core.Stats
	counts   storage.OpCounts
	analysis *analyze.Analysis
}

// Workload shape for ext-checkpoint. The numbers are small enough to
// keep the experiment under a second but large enough that the
// injected PFS write latency dominates the write-through stall.
const (
	ckptTrainFiles = 12
	ckptTrainSize  = 32 << 10
	ckptShards     = 8
	ckptShardSize  = 64 << 10
	ckptEpochs     = 3
	ckptPFSLatency = 2 * time.Millisecond
)

// runCheckpoint drives a training loop that alternates read epochs
// with checkpoint bursts against real backends: a MemFS tier 0 over a
// latency-injected MemFS "PFS", with every PFS operation counted. When
// back is true the checkpoint namespace is write-back (tier-0 ack,
// async flush, journaled); otherwise every write goes through to the
// PFS before acking — the direct-PFS baseline. Each run captures an
// access trace so the analyzer's write table can be cross-checked
// against the storage counters.
func runCheckpoint(back bool, dir string) (checkpointResult, error) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	for i := 0; i < ckptTrainFiles; i++ {
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("data/f%02d", i), make([]byte, ckptTrainSize)); err != nil {
			return checkpointResult{}, err
		}
	}
	pfs := storage.NewCounting(&slowPFS{Backend: pfsRaw, lat: ckptPFSLatency})
	mode := "through"
	if back {
		mode = "back"
	}
	tracePath := filepath.Join(dir, "ckpt-"+mode+".trace")
	cfg := core.Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 8<<20), pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		TracePath:     tracePath,
		Write: core.WriteConfig{
			Enabled: true,
		},
	}
	if back {
		cfg.Write.Durability = func(string) core.Durability { return core.WriteBack }
		cfg.Write.JournalPath = filepath.Join(dir, "ckpt.wal")
	}
	m, err := core.New(cfg)
	if err != nil {
		return checkpointResult{}, err
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		return checkpointResult{}, err
	}

	payload := make([]byte, ckptShardSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, ckptTrainSize)
	start := time.Now()
	var stall time.Duration
	for epoch := 1; epoch <= ckptEpochs; epoch++ {
		for i := 0; i < ckptTrainFiles; i++ {
			if _, err := m.ReadAt(ctx, fmt.Sprintf("data/f%02d", i), buf, 0); err != nil {
				return checkpointResult{}, err
			}
		}
		// The checkpoint burst: training is stalled until every shard
		// is acked. This is the window the write path exists to shrink.
		t0 := time.Now()
		for s := 0; s < ckptShards; s++ {
			name := fmt.Sprintf("ckpt/e%d-s%d", epoch, s)
			if err := m.Create(ctx, name, ckptShardSize); err != nil {
				return checkpointResult{}, err
			}
			if _, err := m.WriteAt(ctx, name, payload, 0); err != nil {
				return checkpointResult{}, err
			}
		}
		stall += time.Since(t0)
		m.MarkEpoch(epoch)
	}
	// Durability parity: the run is not over until every acked byte is
	// on the PFS, whichever mode produced it.
	if err := m.Flush(ctx, ""); err != nil {
		return checkpointResult{}, err
	}
	total := time.Since(start)
	st := m.Stats()
	m.Close()
	tr, err := trace.ReadFile(tracePath)
	if err != nil {
		return checkpointResult{}, err
	}
	return checkpointResult{
		stall:    stall,
		total:    total,
		stats:    st,
		counts:   pfs.Counts(),
		analysis: analyze.Analyze(tr, analyze.Options{}),
	}, nil
}

// writeRows sums the analyzer's per-epoch write table.
func writeRows(a *analyze.Analysis) (writes, writeBacks, flushes, bytes int64) {
	for _, e := range a.Epochs {
		writes += e.Writes
		writeBacks += e.WriteBacks
		flushes += e.Flushes
		bytes += e.BytesWritten
	}
	return
}

// extCheckpoint measures what the write path buys a training loop that
// checkpoints: foreground stall with write-back placement vs direct
// PFS writes, at equal durability (both runs end with every byte on
// the PFS). The stall numbers are cross-checked two independent ways:
// the Counting wrapper's PFS op/byte counters and the trace analyzer's
// write table must both agree with the run's own Stats.
func extCheckpoint() Experiment {
	return Experiment{
		ID:    "ext-checkpoint",
		Title: "Extension — checkpoint stall: write-back placement vs direct PFS",
		Paper: "beyond §III: the paper's hierarchy only reads — checkpoints still pay full " +
			"PFS latency in the training loop; acking on tier 0 with journaled async " +
			"flush (cf. burst-buffer checkpointing) moves the PFS off the critical path " +
			"while a crash-safe WAL keeps the ack durable",
		Run: func(p Params) (*Outcome, error) {
			dir, err := os.MkdirTemp("", "monarch-ckpt")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			through, err := runCheckpoint(false, dir)
			if err != nil {
				return nil, err
			}
			backDir := filepath.Join(dir, "back")
			if err := os.Mkdir(backDir, 0o755); err != nil {
				return nil, err
			}
			back, err := runCheckpoint(true, backDir)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			const shardsTotal = int64(ckptShards * ckptEpochs)
			tbl := report.NewTable(
				fmt.Sprintf("checkpoint burst: %d shards x %dKiB per epoch, %d epochs, PFS +%s/write-op",
					ckptShards, ckptShardSize>>10, ckptEpochs, ckptPFSLatency),
				"mode", "ckpt stall", "stall/epoch", "PFS write ops", "PFS bytes", "flushes", "budget stalls")
			for _, row := range []struct {
				name string
				r    checkpointResult
			}{{"write-through (direct PFS)", through}, {"write-back (tier-0 ack + WAL)", back}} {
				_, _, flushes, _ := writeRows(row.r.analysis)
				tbl.Add(row.name,
					row.r.stall.Round(time.Millisecond).String(),
					(row.r.stall / ckptEpochs).Round(100*time.Microsecond).String(),
					report.Count(row.r.counts.Ops[storage.OpWrite]),
					report.Count(row.r.counts.BytesWritten),
					report.Count(flushes),
					report.Count(row.r.stats.WriteStalls))
			}
			o.Tables = append(o.Tables, tbl)

			o.check("write-back takes the PFS off the checkpoint critical path",
				back.stall*4 < through.stall,
				"stall %s write-back vs %s direct-PFS", back.stall.Round(time.Millisecond), through.stall.Round(time.Millisecond))
			o.check("durability parity: both modes land every checkpoint byte on the PFS",
				through.counts.BytesWritten == shardsTotal*ckptShardSize &&
					back.counts.BytesWritten == shardsTotal*ckptShardSize &&
					back.stats.DirtyBytes == 0,
				"PFS bytes: through %d, back %d, want %d; residual dirty %d",
				through.counts.BytesWritten, back.counts.BytesWritten,
				shardsTotal*ckptShardSize, back.stats.DirtyBytes)
			thWrites, thBacks, _, thBytes := writeRows(through.analysis)
			bkWrites, bkBacks, bkFlushes, bkBytes := writeRows(back.analysis)
			o.check("trace analyzer prices the write classes the counters report",
				thWrites == shardsTotal && thBacks == 0 &&
					bkBacks == shardsTotal && bkWrites == 0 && bkFlushes == shardsTotal,
				"through: %d writes/%d write-backs; back: %d writes/%d write-backs/%d flushes; want %d per class",
				thWrites, thBacks, bkWrites, bkBacks, bkFlushes, shardsTotal)
			o.check("trace byte accounting matches the run's own counters",
				thBytes == through.stats.WrittenBytes && bkBytes == back.stats.WrittenBytes &&
					back.stats.FlushedBytes == back.stats.WrittenBytes,
				"trace bytes through %d (stats %d), back %d (stats %d), flushed %d",
				thBytes, through.stats.WrittenBytes, bkBytes, back.stats.WrittenBytes, back.stats.FlushedBytes)
			o.check("direct PFS pays two foreground ops per shard, write-back flushes once",
				through.counts.Ops[storage.OpWrite] == 2*shardsTotal &&
					back.counts.Ops[storage.OpWrite] == shardsTotal,
				"PFS write ops: through %d (want %d), back %d (want %d)",
				through.counts.Ops[storage.OpWrite], 2*shardsTotal,
				back.counts.Ops[storage.OpWrite], shardsTotal)
			return o, nil
		},
	}
}
