package experiments

import (
	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/train"
)

// extResilience injects a tier-0 device failure after epoch 1: MONARCH
// must fall back to serving every read from the PFS — training slows
// back to vanilla-lustre pace but never fails. The paper's design
// implies this property (the PFS always holds the full dataset); this
// experiment proves the implementation delivers it.
func extResilience() Experiment {
	return Experiment{
		ID:    "ext-resilience",
		Title: "Extension — tier-0 failure mid-training (100 GiB, LeNet)",
		Paper: "implied by §III: the last level always holds the full dataset, so losing " +
			"every upper tier must degrade performance, not correctness",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			mdl, err := models.ByName("lenet")
			if err != nil {
				return nil, err
			}

			runOnce := func(breakTier bool, seed uint64) (train.Result, core.Stats, error) {
				env := sim.NewEnv(seed)
				defer env.Close()
				lustreDev := simstore.NewDevice(env, p.Lustre)
				if p.UseInterference {
					lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
				}
				lustre := simstore.NewStore(lustreDev, "lustre", 0)
				for i := range man.Shards {
					lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
				}
				lustre.SetReadOnly(true)
				pfs := storage.NewCounting(lustre)
				ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
				ssd.CopyChunk = p.CopyChunk
				faulty := storage.NewFaulty(ssd)
				m, err := core.New(core.Config{
					Levels:        []storage.Backend{faulty, pfs},
					Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
					FullFileFetch: true,
				})
				if err != nil {
					return train.Result{}, core.Stats{}, err
				}
				pcfg := p.Pipeline
				pcfg.Manifest = man
				pcfg.Source = m
				var res train.Result
				var runErr error
				env.Go("run", func(proc *sim.Proc) {
					if err := m.Init(proc.Context()); err != nil {
						runErr = err
						return
					}
					res, runErr = train.Run(proc, train.Config{
						Model:    mdl,
						Node:     p.Node,
						Epochs:   p.Epochs,
						Pipeline: pcfg,
						Seed:     seed,
						OnEpochEnd: func(_ *sim.Proc, epoch int) {
							if breakTier && epoch == 0 {
								faulty.Break() // the SSD dies after epoch 1
							}
						},
					})
				})
				if err := env.Run(); err != nil {
					return train.Result{}, core.Stats{}, err
				}
				if runErr != nil {
					return train.Result{}, core.Stats{}, runErr
				}
				return res, m.Stats(), nil
			}

			healthy, _, err := runOnce(false, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			broken, st, err := runOnce(true, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			lustreAgg, err := run(VanillaLustre, "lenet", ds100, p)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable("tier-0 failure after epoch 1 (single seed)",
				"run", "epoch 1", "epoch 2", "epoch 3", "total", "fallback reads")
			t.Add("healthy",
				report.Seconds(healthy.Epochs[0].Duration.Seconds()),
				report.Seconds(healthy.Epochs[1].Duration.Seconds()),
				report.Seconds(healthy.Epochs[2].Duration.Seconds()),
				report.Seconds(healthy.Total.Seconds()), "0")
			t.Add("ssd dies after epoch 1",
				report.Seconds(broken.Epochs[0].Duration.Seconds()),
				report.Seconds(broken.Epochs[1].Duration.Seconds()),
				report.Seconds(broken.Epochs[2].Duration.Seconds()),
				report.Seconds(broken.Total.Seconds()),
				report.Count(st.Fallbacks))
			o.Tables = append(o.Tables, t)

			records := 0
			for _, e := range broken.Epochs {
				records += e.Records
			}
			o.check("training completes despite losing tier 0",
				records == man.NumRecords()*p.Epochs,
				"%d records delivered of %d", records, man.NumRecords()*p.Epochs)
			o.check("every post-failure read fell back to the PFS",
				st.Fallbacks > 0, "%d fallbacks", st.Fallbacks)
			// The degraded pace is vanilla-lustre's, which under
			// interference has wide per-seed spread: accept anything
			// clearly slower than healthy and no slower than lustre's
			// observed range.
			o.check("post-failure epochs degrade toward vanilla-lustre pace",
				broken.Epochs[2].Duration.Seconds() > 1.2*healthy.Epochs[2].Duration.Seconds() &&
					broken.Epochs[2].Duration.Seconds() < 1.6*lustreAgg.EpochTime[2].Mean()+lustreAgg.EpochTime[2].StdDev()*3,
				"broken epoch 3 %.1f vs healthy %.1f vs lustre %.1f ± %.1f",
				broken.Epochs[2].Duration.Seconds(), healthy.Epochs[2].Duration.Seconds(),
				lustreAgg.EpochTime[2].Mean(), lustreAgg.EpochTime[2].StdDev())
			return o, nil
		},
	}
}
