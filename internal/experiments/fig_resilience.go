package experiments

import (
	"context"
	"time"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/train"
)

// extResilience injects a tier-0 device failure after epoch 1: MONARCH
// must fall back to serving every read from the PFS — training slows
// back to vanilla-lustre pace but never fails. The paper's design
// implies this property (the PFS always holds the full dataset); this
// experiment proves the implementation delivers it.
//
// A second scenario repairs the device after epoch 2 and runs one
// extra epoch: the recovery probe must return the tier to service, the
// demoted files must be re-placed, and the final epoch must run at the
// cached-tier pace again — the full self-healing loop under the
// simulated cluster, not just unit-test backends.
func extResilience() Experiment {
	return Experiment{
		ID:    "ext-resilience",
		Title: "Extension — tier-0 failure mid-training (100 GiB, LeNet)",
		Paper: "implied by §III: the last level always holds the full dataset, so losing " +
			"every upper tier must degrade performance, not correctness",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			mdl, err := models.ByName("lenet")
			if err != nil {
				return nil, err
			}

			// runOnce trains for epochs epochs, breaking tier 0 at the end
			// of epoch breakAfter and repairing it at the end of epoch
			// fixAfter (0-based; -1 = never).
			runOnce := func(breakAfter, fixAfter, epochs int, seed uint64) (train.Result, core.Stats, error) {
				env := sim.NewEnv(seed)
				defer env.Close()
				lustreDev := simstore.NewDevice(env, p.Lustre)
				if p.UseInterference {
					lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
				}
				lustre := simstore.NewStore(lustreDev, "lustre", 0)
				for i := range man.Shards {
					lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
				}
				lustre.SetReadOnly(true)
				pfs := storage.NewCounting(lustre)
				ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
				ssd.CopyChunk = p.CopyChunk
				faulty := storage.NewFaulty(ssd)
				m, err := core.New(core.Config{
					Levels:        []storage.Backend{faulty, pfs},
					Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
					FullFileFetch: true,
					Retry: core.RetryPolicy{
						MaxAttempts: 3,
						Backoff:     100 * time.Millisecond,
						// Back off in virtual time: retries run on SimPool
						// workers, whose contexts carry the sim process.
						Sleep: func(ctx context.Context, d time.Duration) {
							if proc, ok := sim.ProcFromContext(ctx); ok {
								proc.Sleep(d)
							}
						},
					},
				})
				if err != nil {
					return train.Result{}, core.Stats{}, err
				}
				pcfg := p.Pipeline
				pcfg.Manifest = man
				pcfg.Source = m
				var res train.Result
				var runErr error
				env.Go("run", func(proc *sim.Proc) {
					if err := m.Init(proc.Context()); err != nil {
						runErr = err
						return
					}
					res, runErr = train.Run(proc, train.Config{
						Model:    mdl,
						Node:     p.Node,
						Epochs:   epochs,
						Pipeline: pcfg,
						Seed:     seed,
						OnEpochEnd: func(_ *sim.Proc, epoch int) {
							if epoch == breakAfter {
								faulty.Break() // the SSD dies
							}
							if epoch == fixAfter {
								faulty.Fix() // the SSD is replaced
							}
						},
					})
				})
				if err := env.Run(); err != nil {
					return train.Result{}, core.Stats{}, err
				}
				if runErr != nil {
					return train.Result{}, core.Stats{}, runErr
				}
				return res, m.Stats(), nil
			}

			healthy, _, err := runOnce(-1, -1, p.Epochs, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			broken, st, err := runOnce(0, -1, p.Epochs, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			// Failure AND repair: one extra epoch to observe the recovered
			// pace (break after epoch 1, fix after epoch 2).
			recEpochs := p.Epochs + 1
			recovered, rst, err := runOnce(0, 1, recEpochs, p.BaseSeed)
			if err != nil {
				return nil, err
			}
			lustreAgg, err := run(VanillaLustre, "lenet", ds100, p)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable("tier-0 failure after epoch 1 (single seed)",
				"run", "epoch 1", "epoch 2", "epoch 3", "total", "fallback reads")
			t.Add("healthy",
				report.Seconds(healthy.Epochs[0].Duration.Seconds()),
				report.Seconds(healthy.Epochs[1].Duration.Seconds()),
				report.Seconds(healthy.Epochs[2].Duration.Seconds()),
				report.Seconds(healthy.Total.Seconds()), "0")
			t.Add("ssd dies after epoch 1",
				report.Seconds(broken.Epochs[0].Duration.Seconds()),
				report.Seconds(broken.Epochs[1].Duration.Seconds()),
				report.Seconds(broken.Epochs[2].Duration.Seconds()),
				report.Seconds(broken.Total.Seconds()),
				report.Count(st.Fallbacks))
			o.Tables = append(o.Tables, t)

			t2 := report.NewTable("tier-0 failure after epoch 1, repaired after epoch 2 (single seed)",
				"run", "epoch 1", "epoch 2", "epoch 3", "epoch 4",
				"fallbacks", "demotions", "re-placed", "recoveries")
			t2.Add("fail + repair",
				report.Seconds(recovered.Epochs[0].Duration.Seconds()),
				report.Seconds(recovered.Epochs[1].Duration.Seconds()),
				report.Seconds(recovered.Epochs[2].Duration.Seconds()),
				report.Seconds(recovered.Epochs[3].Duration.Seconds()),
				report.Count(rst.Fallbacks),
				report.Count(rst.Demotions),
				report.Count(rst.Placements-int64(len(man.Shards))),
				report.Count(rst.TierRecoveries))
			o.Tables = append(o.Tables, t2)

			records := 0
			for _, e := range broken.Epochs {
				records += e.Records
			}
			o.check("training completes despite losing tier 0",
				records == man.NumRecords()*p.Epochs,
				"%d records delivered of %d", records, man.NumRecords()*p.Epochs)
			o.check("every post-failure read fell back to the PFS or was demoted",
				st.Fallbacks > 0 && st.Demotions > 0,
				"%d fallbacks, %d demotions", st.Fallbacks, st.Demotions)
			// The degraded pace is vanilla-lustre's, which under
			// interference has wide per-seed spread: accept anything
			// clearly slower than healthy and no slower than lustre's
			// observed range.
			o.check("post-failure epochs degrade toward vanilla-lustre pace",
				broken.Epochs[2].Duration.Seconds() > 1.2*healthy.Epochs[2].Duration.Seconds() &&
					broken.Epochs[2].Duration.Seconds() < 1.6*lustreAgg.EpochTime[2].Mean()+lustreAgg.EpochTime[2].StdDev()*3,
				"broken epoch 3 %.1f vs healthy %.1f vs lustre %.1f ± %.1f",
				broken.Epochs[2].Duration.Seconds(), healthy.Epochs[2].Duration.Seconds(),
				lustreAgg.EpochTime[2].Mean(), lustreAgg.EpochTime[2].StdDev())

			// Recovery scenario checks: the full self-healing loop.
			recRecords := 0
			for _, e := range recovered.Epochs {
				recRecords += e.Records
			}
			o.check("training completes through failure and repair",
				recRecords == man.NumRecords()*recEpochs,
				"%d records delivered of %d", recRecords, man.NumRecords()*recEpochs)
			o.check("breaker trips on the dead tier and reopens it after repair",
				rst.TierTrips >= 1 && rst.TierRecoveries >= 1 && rst.Demotions > 0,
				"%d trips, %d recoveries, %d demotions", rst.TierTrips, rst.TierRecoveries, rst.Demotions)
			o.check("demoted files are re-placed after repair",
				rst.Placements > int64(len(man.Shards)),
				"%d placements for %d shards", rst.Placements, len(man.Shards))
			o.check("the epoch after failure degrades toward vanilla-lustre pace",
				recovered.Epochs[1].Duration.Seconds() > 1.2*healthy.Epochs[1].Duration.Seconds(),
				"degraded epoch 2 %.1f vs healthy %.1f",
				recovered.Epochs[1].Duration.Seconds(), healthy.Epochs[1].Duration.Seconds())
			o.check("the final epoch recovers the cached-tier pace",
				recovered.Epochs[3].Duration.Seconds() < 0.8*recovered.Epochs[1].Duration.Seconds(),
				"recovered epoch 4 %.1f vs degraded epoch 2 %.1f (healthy %.1f)",
				recovered.Epochs[3].Duration.Seconds(), recovered.Epochs[1].Duration.Seconds(),
				healthy.Epochs[2].Duration.Seconds())
			return o, nil
		},
	}
}
