package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"monarch/internal/core"
	"monarch/internal/obs"
	"monarch/internal/obs/cluster"
	"monarch/internal/peernet"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/rng"
	"monarch/internal/storage"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

// This file runs the peer-cache network for real: N in-process nodes,
// each with its own tier-0 store served over loopback TCP by a
// peernet.Server, a consistent-hash ownership ring, and a shared
// read-only PFS. Unlike the simulator-based distributed experiments,
// everything here moves actual bytes through actual sockets — the run
// measures how many PFS data operations the peer network absorbs under
// reshuffled data-parallel sharding, and how the cluster behaves under
// churn: killed serving sockets, gossip-driven liveness views, node
// rejoin, and hedged reads against an injected slow peer.

// PeerRunConfig parameterises one loopback peer-cache run.
type PeerRunConfig struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Files and FileSize shape the shared dataset: Files shards of
	// FileSize bytes each, named data/shard-NNNN.rec.
	Files    int
	FileSize int
	// Epochs is how many passes over the dataset each node makes.
	Epochs int
	// Mode assigns shards to nodes per epoch (ShardReshuffled is the
	// scenario peer caching exists for).
	Mode ShardingMode
	// UsePeers wires the peer tier in; false runs the no-peer baseline
	// with an otherwise identical hierarchy.
	UsePeers bool
	// Replicas is the replica-set width R on the ownership ring
	// (default 1: primary only). With R >= 2 a node caches every file
	// it is one of the R owners of, so a dead primary's shards stay
	// peer-servable from the next replica.
	Replicas int
	// SSDQuota bounds each node's tier-0 store (0 = unlimited).
	SSDQuota int64
	// Seed drives the per-epoch shard permutations.
	Seed uint64
	// Health tunes each node's tier breaker (zero value = defaults).
	Health core.HealthConfig
	// Membership enables gossip liveness: each node runs a heartbeat
	// loop over its peer clients, views ride PING frames, and the tier
	// deprioritises Suspect and skips Dead replicas. A peer marked
	// Dead feeds the node's tier breaker: demotion pressure when R==1
	// (no replica covers the loss), a forced trip when no peer is
	// live at all.
	Membership bool
	// HeartbeatEvery, SuspectAfter and DeadAfter tune the gossip
	// timing (defaults 25ms / 100ms / 300ms — loopback scale).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	DeadAfter      time.Duration
	// KillAfterEpoch, when >= 1, closes KillNode's peer server once
	// that many epochs have completed: sibling reads of its files fail
	// over to the next replica (R >= 2) or to the PFS (R == 1). The
	// killed node keeps training — only its serving socket dies. Zero
	// disables the fault.
	KillNode       int
	KillAfterEpoch int
	// RejoinAfterEpoch, when >= 1, restarts the killed node's server
	// on its original address once that many epochs have completed;
	// the gossip view resurrects it and ownership routing resumes.
	RejoinAfterEpoch int
	// SlowNode / SlowDelay inject tail latency: every peer-served
	// ReadAt answered by SlowNode's server stalls SlowDelay first
	// (0 disables). Heartbeats are unaffected — the node is slow, not
	// dead — which is exactly the case hedged reads exist for.
	SlowNode  int
	SlowDelay time.Duration
	// Hedge tunes hedged reads on every node's tier.
	Hedge peernet.HedgeConfig
	// TracePath, when non-empty, captures node 0's access trace; the
	// trailer records node 0's measured PFS data ops for the analyzer
	// cross-check.
	TracePath string
	// TraceDir, when non-empty, captures EVERY node's access trace as
	// TraceDir/nodeN.bin — the input cross-node correlation needs: a
	// peer read's client span lands in the reader's trace, the matching
	// serve span in the owner's, stitched by the shared request ID.
	// Overrides TracePath.
	TraceDir string
}

// PeerRunResult summarises one loopback run.
type PeerRunResult struct {
	// PFSOps is the total data-op count against the shared PFS;
	// NodePFSOps splits it per node.
	PFSOps     int64
	NodePFSOps []int64
	// Stats are each node's final middleware counters.
	Stats []core.Stats
	// PeerTierStates is each node's peer-tier breaker state at the end
	// of the run (all TierHealthy when UsePeers is false).
	PeerTierStates []core.TierState
	// PeerStageErrors sums monarch_errors_total{stage="peer"} across
	// nodes — peer transport/protocol failures, NOT clean misses.
	PeerStageErrors int64
	// Hedges / HedgeWins aggregate the tiers' hedge counters: requests
	// raced against a slow primary, and races the backup won.
	Hedges    int64
	HedgeWins int64
	// KillConvergence is how long after the kill every surviving
	// node's view marked the victim Dead; RejoinConvergence how long
	// after the restart every view marked it Alive again. Zero when
	// not measured, -1 when a view failed to converge in time.
	KillConvergence   time.Duration
	RejoinConvergence time.Duration
	// FinalViews is each node's final membership snapshot (nil
	// without Membership).
	FinalViews []map[string]peernet.PeerState
	// Fleet is the cluster aggregator's merged view, polled once after
	// the last epoch through node 0's peer clients plus node 0's own
	// registry — the same path /metrics/cluster serves. Nil when
	// UsePeers is false.
	Fleet *cluster.Snapshot
}

// PeerHits sums peer-cache hits across nodes.
func (r *PeerRunResult) PeerHits() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.PeerHits
	}
	return n
}

// PeerHedges sums hedged peer hits across nodes.
func (r *PeerRunResult) PeerHedges() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.PeerHedges
	}
	return n
}

// Fallbacks sums PFS fallbacks across nodes.
func (r *PeerRunResult) Fallbacks() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.Fallbacks
	}
	return n
}

// peerBarrier is a cyclic barrier for real goroutines (the simulator's
// WaitGroup does not apply here): all n participants block until the
// last arrives, which first runs onRelease with the 0-based round just
// completed.
type peerBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	arrived   int
	round     int
	onRelease func(round int)
}

func newPeerBarrier(n int, onRelease func(int)) *peerBarrier {
	b := &peerBarrier{n: n, onRelease: onRelease}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *peerBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	round := b.round
	b.arrived++
	if b.arrived == b.n {
		if b.onRelease != nil {
			b.onRelease(round)
		}
		b.arrived = 0
		b.round++
		b.cond.Broadcast()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
}

// peerShardContent is the deterministic content of shard i.
func peerShardContent(i, size int) []byte {
	return bytes.Repeat([]byte{byte(i%251 + 1)}, size)
}

// slowReads delays every ReadAt against the wrapped backend — a peer
// whose serving path is congested but whose process is healthy.
type slowReads struct {
	storage.Backend
	delay time.Duration
}

func (s slowReads) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-t.C:
	}
	return s.Backend.ReadAt(ctx, name, p, off)
}

// waitPeerState polls every view (skipping index skip and nil entries)
// until all agree peer is in state want; it returns how long that took,
// or -1 on timeout.
func waitPeerState(mems []*peernet.Membership, skip int, peer string, want peernet.PeerState, timeout time.Duration) time.Duration {
	start := time.Now()
	for {
		agreed := true
		for i, m := range mems {
			if i == skip || m == nil {
				continue
			}
			if m.State(peer) != want {
				agreed = false
				break
			}
		}
		if agreed {
			return time.Since(start)
		}
		if time.Since(start) > timeout {
			return -1
		}
		time.Sleep(time.Millisecond)
	}
}

// RunPeerLoopback executes one peer-cache run over real loopback TCP.
func RunPeerLoopback(cfg PeerRunConfig) (*PeerRunResult, error) {
	if cfg.Nodes < 1 || cfg.Files < 1 || cfg.FileSize < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("experiments: bad peer config %+v", cfg)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		return nil, fmt.Errorf("experiments: %d replicas exceed %d nodes", cfg.Replicas, cfg.Nodes)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 25 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 100 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 300 * time.Millisecond
	}
	ctx := context.Background()

	// Shared dataset.
	pfsRaw := storage.NewMemFS("lustre", 0)
	names := make([]string, cfg.Files)
	for i := range names {
		names[i] = fmt.Sprintf("data/shard-%04d.rec", i)
		if err := pfsRaw.WriteFile(ctx, names[i], peerShardContent(i, cfg.FileSize)); err != nil {
			return nil, err
		}
	}
	pfsRaw.SetReadOnly(true)

	nodeIDs := make([]string, cfg.Nodes)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := peernet.NewRing(nodeIDs, 0)
	if err != nil {
		return nil, err
	}

	// Membership views come first: the servers gossip through them and
	// the tiers route by them. monMu orders the views' OnChange
	// callbacks (fired from heartbeat and server goroutines) against
	// the main goroutine still wiring monarchs up.
	var monMu sync.Mutex
	mems := make([]*peernet.Membership, cfg.Nodes)
	monarchs := make([]*core.Monarch, cfg.Nodes)
	gossip := cfg.UsePeers && cfg.Membership
	if gossip {
		for i := range mems {
			i := i
			others := make([]string, 0, cfg.Nodes-1)
			for j, id := range nodeIDs {
				if j != i {
					others = append(others, id)
				}
			}
			view, err := peernet.NewMembership(peernet.MembershipConfig{
				Self:         nodeIDs[i],
				Peers:        others,
				SuspectAfter: cfg.SuspectAfter,
				DeadAfter:    cfg.DeadAfter,
				OnChange: func(peer string, from, to peernet.PeerState) {
					if to != peernet.PeerDead {
						return
					}
					// A dead peer costs nothing while replicas cover its
					// shards; feed the breaker only when they do not.
					monMu.Lock()
					mon, view := monarchs[i], mems[i]
					monMu.Unlock()
					if mon == nil {
						return
					}
					err := fmt.Errorf("experiments: gossip marked peer %s dead", peer)
					switch {
					case view.LiveCount() == 0:
						mon.ForceTierDown(1, err)
					case cfg.Replicas == 1:
						mon.ReportTierError(1, err)
					}
				},
			})
			if err != nil {
				return nil, err
			}
			monMu.Lock()
			mems[i] = view
			monMu.Unlock()
		}
	}

	// The serving sockets come up before the monarchs exist, so the
	// observability hooks late-bind: each server's STATS answer and
	// serve-span sink resolve node i's instance per request (nil until
	// assembly finishes, reported as an error rather than a panic).
	nodeStats := func(i int) func() (peernet.NodeStats, error) {
		return func() (peernet.NodeStats, error) {
			monMu.Lock()
			m, view := monarchs[i], mems[i]
			monMu.Unlock()
			if m == nil {
				return peernet.NodeStats{}, fmt.Errorf("node %s still assembling", nodeIDs[i])
			}
			ns := peernet.NodeStats{Node: nodeIDs[i], Metrics: m.Registry().Snapshot()}
			if view != nil {
				for peer, st := range view.Snapshot() {
					ns.Gossip = append(ns.Gossip, peernet.GossipEntry{Node: peer, State: st.String()})
				}
				sort.Slice(ns.Gossip, func(a, b int) bool { return ns.Gossip[a].Node < ns.Gossip[b].Node })
			}
			if jobs := m.Stats().Jobs; len(jobs) > 0 {
				ns.Jobs = make(map[string]peernet.JobCounters, len(jobs))
				for job, js := range jobs {
					ns.Jobs[job] = peernet.JobCounters{
						ReadsServed: js.ReadsServed, BytesServed: js.BytesServed,
						Hits: js.Hits, Evictions: js.Evictions,
					}
				}
			}
			return ns, nil
		}
	}
	nodeTrace := func(i int) obs.TraceHook {
		return func(s obs.Span) {
			monMu.Lock()
			m := monarchs[i]
			monMu.Unlock()
			if m == nil {
				return
			}
			if tr := m.Tracer(); tr != nil {
				tr.HookSpan(s)
			}
		}
	}

	// Per-node stores and, with peers on, one serving socket each. The
	// servers must all be listening before any client dials. The
	// servers slice is mutated by kill/rejoin, so cleanup walks it at
	// exit instead of capturing the originals.
	ssds := make([]*storage.MemFS, cfg.Nodes)
	pfss := make([]*storage.Counting, cfg.Nodes)
	serveBackends := make([]storage.Backend, cfg.Nodes)
	servers := make([]*peernet.Server, cfg.Nodes)
	addrs := make([]string, cfg.Nodes)
	defer func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}()
	for i := range ssds {
		ssds[i] = storage.NewMemFS("ssd-"+nodeIDs[i], cfg.SSDQuota)
		pfss[i] = storage.NewCounting(pfsRaw)
		serveBackends[i] = ssds[i]
		if cfg.SlowDelay > 0 && i == cfg.SlowNode {
			serveBackends[i] = slowReads{Backend: ssds[i], delay: cfg.SlowDelay}
		}
		if cfg.UsePeers {
			srv, err := peernet.NewServer(peernet.ServerConfig{
				Backend:    serveBackends[i],
				Membership: mems[i],
				Stats:      nodeStats(i),
				Trace:      nodeTrace(i),
			})
			if err != nil {
				return nil, err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go srv.Serve(ln)
			servers[i] = srv
			addrs[i] = ln.Addr().String()
		}
	}

	tiers := make([]*peernet.Tier, cfg.Nodes)
	clientsOf := make([]map[string]*peernet.Client, cfg.Nodes)
	for i := range monarchs {
		levels := []storage.Backend{ssds[i], pfss[i]}
		mcfg := core.Config{
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Health:        cfg.Health,
		}
		if cfg.UsePeers {
			clients := make(map[string]*peernet.Client)
			for j, id := range nodeIDs {
				if j == i {
					continue
				}
				c, err := peernet.NewClient(peernet.ClientConfig{
					Name:    "peer:" + id,
					Dial:    peernet.TCPDialer(addrs[j], 2*time.Second),
					Timeout: 2 * time.Second,
					Retries: 1,
					Backoff: 5 * time.Millisecond,
				})
				if err != nil {
					return nil, err
				}
				clients[id] = c
			}
			clientsOf[i] = clients
			tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
				Name:       "peers",
				Self:       nodeIDs[i],
				Ring:       ring,
				Clients:    clients,
				Replicas:   cfg.Replicas,
				Membership: mems[i],
				Hedge:      cfg.Hedge,
			})
			if err != nil {
				return nil, err
			}
			tiers[i] = tier
			defer tier.Close()
			levels = []storage.Backend{ssds[i], tier, pfss[i]}
			self, replicas := nodeIDs[i], cfg.Replicas
			mcfg.Peer = core.PeerConfig{
				Tier: 1,
				Owns: func(name string) bool { return ring.OwnedBy(name, self, replicas) },
			}
		}
		mcfg.Levels = levels
		if i == 0 && cfg.TracePath != "" {
			mcfg.TracePath = cfg.TracePath
		}
		if cfg.TraceDir != "" {
			mcfg.TracePath = filepath.Join(cfg.TraceDir, fmt.Sprintf("node%d.bin", i))
		}
		m, err := core.New(mcfg)
		if err != nil {
			return nil, err
		}
		if err := m.Init(ctx); err != nil {
			m.Close()
			return nil, err
		}
		monMu.Lock()
		monarchs[i] = m
		monMu.Unlock()
	}

	// Gossip loops start only once every monarch exists, so OnChange
	// always finds a breaker to feed.
	if gossip {
		for i := range mems {
			hb, err := peernet.NewHeartbeater(mems[i], clientsOf[i], cfg.HeartbeatEvery)
			if err != nil {
				return nil, err
			}
			hb.Start()
			defer hb.Stop()
		}
	}

	res := &PeerRunResult{
		NodePFSOps:     make([]int64, cfg.Nodes),
		Stats:          make([]core.Stats, cfg.Nodes),
		PeerTierStates: make([]core.TierState, cfg.Nodes),
	}

	// Epoch loop: each node reads its shard slice in full, waits for
	// its placements to settle (so the next epoch sees warm owner
	// caches), then joins the barrier. The last arriver of the kill
	// epoch closes the victim's serving socket; of the rejoin epoch,
	// restarts it on the recorded address. Convergence of the gossip
	// views is measured from goroutines so the kill itself never
	// blocks the epoch cadence — the next epoch's reads race the
	// views, exactly like production churn.
	killEnabled := cfg.UsePeers && cfg.KillAfterEpoch >= 1 &&
		cfg.KillNode >= 0 && cfg.KillNode < cfg.Nodes
	victim := ""
	if killEnabled {
		victim = nodeIDs[cfg.KillNode]
	}
	convKill := make(chan time.Duration, 1)
	convRejoin := make(chan time.Duration, 1)
	var killMeasured, killDrained, rejoinMeasured bool
	var rejoinErr error
	barrier := newPeerBarrier(cfg.Nodes, func(round int) {
		if !killEnabled {
			return
		}
		if round+1 == cfg.KillAfterEpoch && servers[cfg.KillNode] != nil {
			servers[cfg.KillNode].Close()
			servers[cfg.KillNode] = nil
			if gossip {
				killMeasured = true
				go func() {
					convKill <- waitPeerState(mems, cfg.KillNode, victim, peernet.PeerDead, 10*time.Second)
				}()
			}
		}
		if cfg.RejoinAfterEpoch >= 1 && round+1 == cfg.RejoinAfterEpoch && servers[cfg.KillNode] == nil {
			if killMeasured && !killDrained {
				// The dead view must have settled before the node returns,
				// or the two convergence measurements would overlap.
				res.KillConvergence = <-convKill
				killDrained = true
			}
			srv, err := peernet.NewServer(peernet.ServerConfig{
				Backend:    serveBackends[cfg.KillNode],
				Membership: mems[cfg.KillNode],
				Stats:      nodeStats(cfg.KillNode),
				Trace:      nodeTrace(cfg.KillNode),
			})
			if err != nil {
				rejoinErr = err
				return
			}
			ln, err := net.Listen("tcp", addrs[cfg.KillNode])
			if err != nil {
				rejoinErr = err
				return
			}
			go srv.Serve(ln)
			servers[cfg.KillNode] = srv
			if gossip {
				rejoinMeasured = true
				go func() {
					convRejoin <- waitPeerState(mems, cfg.KillNode, victim, peernet.PeerAlive, 10*time.Second)
				}()
			}
		}
	})
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := monarchs[node]
			buf := make([]byte, cfg.FileSize)
			for epoch := 1; epoch <= cfg.Epochs; epoch++ {
				for _, shard := range peerShardOrder(cfg.Mode, node, cfg.Nodes, cfg.Files, epoch, cfg.Seed) {
					name := names[shard]
					n, err := m.ReadAt(ctx, name, buf, 0)
					if err != nil {
						errs[node] = fmt.Errorf("node %d epoch %d %s: %w", node, epoch, name, err)
						return
					}
					if n != cfg.FileSize || buf[0] != peerShardContent(shard, 1)[0] {
						errs[node] = fmt.Errorf("node %d epoch %d %s: bad content (n=%d)", node, epoch, name, n)
						return
					}
				}
				if err := waitMonarchIdle(m, 10*time.Second); err != nil {
					errs[node] = fmt.Errorf("node %d epoch %d: %w", node, epoch, err)
					return
				}
				if node == 0 || cfg.TraceDir != "" {
					m.MarkTraceEpoch(epoch)
				}
				barrier.await()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if rejoinErr != nil {
		return nil, rejoinErr
	}
	if killMeasured && !killDrained {
		res.KillConvergence = <-convKill
	}
	if rejoinMeasured {
		res.RejoinConvergence = <-convRejoin
	}

	// Fleet aggregation, while every server is still up: node 0 polls
	// its siblings' STATS frames through the same pooled clients its
	// peer tier reads with, and contributes its own registry locally —
	// exactly what /metrics/cluster serves on a production node.
	if cfg.UsePeers {
		var sources []cluster.Source
		for j := 1; j < cfg.Nodes; j++ {
			sources = append(sources, cluster.Source{Node: nodeIDs[j], Client: clientsOf[0][nodeIDs[j]]})
		}
		agg := cluster.New(cluster.Config{Self: nodeStats(0), Sources: sources})
		snap, err := agg.Poll(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet stats poll: %w", err)
		}
		res.Fleet = &snap
	}

	for i, m := range monarchs {
		res.Stats[i] = m.Stats()
		res.NodePFSOps[i] = pfss[i].Counts().DataOps()
		res.PFSOps += res.NodePFSOps[i]
		if cfg.UsePeers {
			res.PeerTierStates[i] = m.TierState(1)
		}
		if tiers[i] != nil {
			res.Hedges += tiers[i].Hedges()
			res.HedgeWins += tiers[i].HedgeWins()
		}
		if mems[i] != nil {
			if res.FinalViews == nil {
				res.FinalViews = make([]map[string]peernet.PeerState, cfg.Nodes)
			}
			res.FinalViews[i] = mems[i].Snapshot()
		}
		res.PeerStageErrors += int64(m.Registry().Vars()[`monarch_errors_total{stage="peer"}`])
		if tr := m.Tracer(); tr != nil {
			tr.AddSummary(map[string]int64{"pfs_data_ops": res.NodePFSOps[i]})
		}
		m.Close()
	}
	return res, nil
}

// peerShardOrder assigns shard indices to node for one epoch, mirroring
// the simulator experiments' selector semantics.
func peerShardOrder(mode ShardingMode, node, nodes, total, epoch int, seed uint64) []int {
	var order []int
	switch mode {
	case ShardSticky:
		for j := node; j < total; j += nodes {
			order = append(order, j)
		}
	case ShardReshuffled:
		perm := rng.New(seed + uint64(epoch)*0x9e3779b9).Perm(total)
		for pos := node; pos < total; pos += nodes {
			order = append(order, perm[pos])
		}
	default: // ShardNone: every node reads everything.
		for j := 0; j < total; j++ {
			order = append(order, j)
		}
	}
	return order
}

// waitMonarchIdle blocks until background placements settle.
func waitMonarchIdle(m *core.Monarch, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !m.Idle() {
		if time.Now().After(deadline) {
			return fmt.Errorf("placements did not quiesce within %s", timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// peerOwnedQuota sizes each node's tier-0 quota to its ownership share
// of the dataset with a little headroom — the peer-cache premise that
// the cluster's aggregate cache holds the dataset roughly R times.
func peerOwnedQuota(nodes, files, fileSize, replicas int) int64 {
	if replicas <= 0 {
		replicas = 1
	}
	ring, err := peernet.NewRing(nodeIDList(nodes), 0)
	if err != nil {
		return 0
	}
	counts := map[string]int64{}
	for i := 0; i < files; i++ {
		for _, owner := range ring.OwnersOf(fmt.Sprintf("data/shard-%04d.rec", i), replicas) {
			counts[owner]++
		}
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return (max + 2) * int64(fileSize)
}

func nodeIDList(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	return ids
}

// fleetPFSOps totals the data operations (reads + writes) the shared
// PFS answered, from the fleet's merged monarch_backend_ops_total —
// every node's source level is a Counting wrapper over the same PFS,
// so the summed series is the cluster's whole PFS bill.
func fleetPFSOps(s obs.Snapshot) int64 {
	var sum float64
	for _, p := range s.Metrics {
		if p.Name != "monarch_backend_ops_total" || p.Value == nil {
			continue
		}
		if p.Labels["backend"] != "lustre" {
			continue
		}
		if op := p.Labels["op"]; op == "read" || op == "write" {
			sum += *p.Value
		}
	}
	return int64(sum)
}

// derivedPFSOps reconstructs the PFS data-op count from one node's
// monarch_ counters: source-served foreground reads plus one whole-file
// fetch per placement that could not reuse a full foreground read.
func derivedPFSOps(s core.Stats) int64 {
	return s.ReadsServed[len(s.ReadsServed)-1] + s.Placements - s.FullReadReuses
}

// AnalyzePeerTrace loads and analyzes a trace captured by
// RunPeerLoopback (node 0's view).
func AnalyzePeerTrace(path string) (*analyze.Analysis, error) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(tr, analyze.Options{}), nil
}

// extPeernet measures the peer cache network over real loopback TCP at
// cluster scale: 16 nodes under reshuffled sharding with a 2-way
// replicated ring and gossip membership. Three adversarial scenarios
// ride the same harness: a mid-run kill and later rejoin of one node
// (the replica set must absorb it with zero PFS fallbacks), an
// injected slow peer (hedged reads must fire and be priced by the
// trace analyzer), and a 4-node rerun showing the savings grow with
// cluster size. PFS-op totals are cross-checked against each node's
// monarch_ counters and the trace analyzer's derivation.
func extPeernet() Experiment {
	return Experiment{
		ID:    "ext-peernet",
		Title: "Extension: peer cache network under churn (16 nodes, R=2)",
		Paper: "MONARCH leaves multi-node cache sharing as future work; " +
			"this extension serves tier-0 caches between nodes over a wire protocol " +
			"with R-way replication, gossip membership and hedged reads, " +
			"so reshuffled sharding stops flushing cache value every epoch " +
			"and a dead or slow node no longer stampedes the PFS.",
		Run: func(p Params) (*Outcome, error) {
			const (
				nodes    = 16
				files    = 96
				fileSize = 2048
				epochs   = 6
				replicas = 2
			)
			cfg := PeerRunConfig{
				Nodes: nodes, Files: files, FileSize: fileSize, Epochs: epochs,
				Mode:     ShardReshuffled,
				Replicas: replicas,
				SSDQuota: peerOwnedQuota(nodes, files, fileSize, replicas),
				Seed:     p.BaseSeed,
			}

			base := cfg
			base.UsePeers = false
			baseline, err := RunPeerLoopback(base)
			if err != nil {
				return nil, err
			}

			// Churn run: node 3's serving socket dies after epoch 2 and
			// returns after epoch 4, while everyone keeps training.
			churnTrace, err := tempTracePath()
			if err != nil {
				return nil, err
			}
			defer os.Remove(churnTrace)
			churnCfg := cfg
			churnCfg.UsePeers = true
			churnCfg.Membership = true
			churnCfg.KillNode = 3
			churnCfg.KillAfterEpoch = 2
			churnCfg.RejoinAfterEpoch = 4
			churnCfg.TracePath = churnTrace
			churn, err := RunPeerLoopback(churnCfg)
			if err != nil {
				return nil, err
			}

			// Hedge run: node 1 serves reads 15ms late; readers race the
			// second replica once the primary blows its threshold.
			hedgeTrace, err := tempTracePath()
			if err != nil {
				return nil, err
			}
			defer os.Remove(hedgeTrace)
			hedgeCfg := cfg
			hedgeCfg.UsePeers = true
			hedgeCfg.Membership = true
			hedgeCfg.SlowNode = 1
			hedgeCfg.SlowDelay = 15 * time.Millisecond
			hedgeCfg.Hedge = peernet.HedgeConfig{
				Enabled:    true,
				Quantile:   0.5,
				MinSamples: 8,
				Floor:      2 * time.Millisecond,
			}
			hedgeCfg.TracePath = hedgeTrace
			hedged, err := RunPeerLoopback(hedgeCfg)
			if err != nil {
				return nil, err
			}

			// Scale contrast: the identical workload at 16 and 4 nodes
			// with the same scarce per-node cache budget and no churn.
			// Holding the budget fixed is the point — the cluster's
			// aggregate cache grows with node count, so the peer
			// network's savings should too. (With budgets scaled to the
			// ownership share instead, a small cluster's aggregate cache
			// already holds the dataset and the scale effect vanishes.)
			scale := cfg
			scale.SSDQuota = int64(6 * fileSize)
			runScale := func(nodes int, peers bool) (*PeerRunResult, error) {
				c := scale
				c.Nodes = nodes
				c.UsePeers = peers
				return RunPeerLoopback(c)
			}
			scaleBase16, err := runScale(16, false)
			if err != nil {
				return nil, err
			}
			scalePeers16, err := runScale(16, true)
			if err != nil {
				return nil, err
			}
			scaleBase4, err := runScale(4, false)
			if err != nil {
				return nil, err
			}
			scalePeers4, err := runScale(4, true)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable(
				fmt.Sprintf("peer cache network: %d shards × %d B, %d reshuffled epochs, R=%d (real TCP)",
					files, fileSize, epochs, replicas),
				"setup", "PFS ops", "peer hits", "peer misses", "hedges", "fallbacks")
			row := func(label string, r *PeerRunResult) {
				var misses int64
				for _, s := range r.Stats {
					misses += s.PeerMisses
				}
				t.Add(label, report.Count(r.PFSOps), report.Count(r.PeerHits()),
					report.Count(misses), report.Count(r.Hedges), report.Count(r.Fallbacks()))
			}
			row("16 nodes, no peers", baseline)
			row("16 nodes, kill+rejoin", churn)
			row("16 nodes, slow peer, hedged", hedged)
			row("16 nodes, small budget, no peers", scaleBase16)
			row("16 nodes, small budget, peers", scalePeers16)
			row("4 nodes, small budget, no peers", scaleBase4)
			row("4 nodes, small budget, peers", scalePeers4)
			// The fleet row comes from the aggregator itself — the churn
			// run's merged /metrics/cluster view, polled over STATS
			// frames — not from the per-node result structs the other
			// rows use. The checks below pin the two accountings to each
			// other.
			if f := churn.Fleet; f != nil {
				fleetHits, _ := f.Fleet.Int("monarch_peer_hits_total")
				fleetMisses, _ := f.Fleet.Int("monarch_peer_misses_total")
				fleetHedges, _ := f.Fleet.Int("monarch_peer_hedges_total")
				fleetFalls, _ := f.Fleet.Int("monarch_fallbacks_total")
				t.Add("16 nodes, kill+rejoin (fleet view)",
					report.Count(fleetPFSOps(f.Fleet)), report.Count(fleetHits),
					report.Count(fleetMisses), report.Count(fleetHedges), report.Count(fleetFalls))
			}
			o.Tables = append(o.Tables, t)

			o.check("peer network cuts PFS data ops under reshuffled sharding",
				churn.PFSOps < baseline.PFSOps,
				"%d vs %d ops (%.1f%% saved)", churn.PFSOps, baseline.PFSOps,
				100*reduction(float64(baseline.PFSOps), float64(churn.PFSOps)))
			o.check("sibling caches actually served reads",
				churn.PeerHits() > 0, "%d peer hits", churn.PeerHits())

			// The robustness property: a killed primary's shards are
			// served by the next replica — the middleware never falls
			// back to the PFS and never records a peer-stage error.
			o.check("kill+rejoin run completed with zero PFS fallbacks",
				churn.Fallbacks() == 0, "%d fallbacks", churn.Fallbacks())
			o.check("no peer-stage errors surfaced to the middleware",
				churn.PeerStageErrors == 0, "%d errors", churn.PeerStageErrors)
			o.check("gossip marked the killed node dead on every survivor",
				churn.KillConvergence >= 0 && churn.KillConvergence <= 10*time.Second,
				"converged in %v", churn.KillConvergence)
			o.check("gossip resurrected the node after rejoin",
				churn.RejoinConvergence >= 0 && churn.RejoinConvergence <= 10*time.Second,
				"converged in %v", churn.RejoinConvergence)

			var derived int64
			for _, s := range churn.Stats {
				derived += derivedPFSOps(s)
			}
			o.check("measured PFS ops match the monarch_ counters",
				derived == churn.PFSOps,
				"counters derive %d, PFS measured %d", derived, churn.PFSOps)

			o.check("cluster aggregator snapshotted every node",
				churn.Fleet != nil && len(churn.Fleet.Nodes) == nodes && len(churn.Fleet.Unreachable) == 0,
				"fleet view holds %d/%d nodes", len(churn.Fleet.Nodes), nodes)
			fleetHits, _ := churn.Fleet.Fleet.Int("monarch_peer_hits_total")
			o.check("fleet peer-hit series equals the sum of per-node counters",
				fleetHits == churn.PeerHits(),
				"fleet %d, per-node counters %d", fleetHits, churn.PeerHits())
			o.check("fleet PFS backend-op series equals the measured PFS data ops",
				fleetPFSOps(churn.Fleet.Fleet) == churn.PFSOps,
				"fleet %d, PFS measured %d", fleetPFSOps(churn.Fleet.Fleet), churn.PFSOps)

			a, err := AnalyzePeerTrace(churnTrace)
			if err != nil {
				return nil, err
			}
			o.check("trace analyzer agrees with node 0's measured PFS ops",
				a.Complete && a.PFSOps == a.RecordedPFSOps,
				"derived %d, recorded %d (complete=%v)", a.PFSOps, a.RecordedPFSOps, a.Complete)
			var traceFallbacks int64
			for _, e := range a.Epochs {
				traceFallbacks += e.Fallback
			}
			o.check("node 0's trace recorded zero fallback-class reads",
				traceFallbacks == 0, "%d fallback reads", traceFallbacks)

			o.check("hedges fired against the slow peer",
				hedged.Hedges > 0 && hedged.PeerHedges() > 0,
				"%d launched, %d served hedged, %d backup wins",
				hedged.Hedges, hedged.PeerHedges(), hedged.HedgeWins)
			ha, err := AnalyzePeerTrace(hedgeTrace)
			if err != nil {
				return nil, err
			}
			var traceHedged int64
			for _, e := range ha.Epochs {
				traceHedged += e.Hedged
			}
			o.check("node 0's hedge counter matches its trace spans",
				hedged.Stats[0].PeerHedges == traceHedged,
				"counter %d, trace %d", hedged.Stats[0].PeerHedges, traceHedged)

			sav16 := reduction(float64(scaleBase16.PFSOps), float64(scalePeers16.PFSOps))
			sav4 := reduction(float64(scaleBase4.PFSOps), float64(scalePeers4.PFSOps))
			o.check("savings grow with cluster size at a fixed per-node cache budget",
				sav16 >= sav4,
				"16 nodes save %.1f%%, 4 nodes save %.1f%%", 100*sav16, 100*sav4)
			return o, nil
		},
	}
}

func epochPeerHits(a *analyze.Analysis) int64 {
	var n int64
	for _, e := range a.Epochs {
		n += e.Peer
	}
	return n
}

// tempTracePath returns a fresh .bin path for a short-lived capture.
func tempTracePath() (string, error) {
	f, err := os.CreateTemp("", "monarch-peer-*.bin")
	if err != nil {
		return "", err
	}
	path := f.Name()
	f.Close()
	return path, nil
}
