package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"monarch/internal/core"
	"monarch/internal/peernet"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/rng"
	"monarch/internal/storage"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

// This file runs the peer-cache network for real: N in-process nodes,
// each with its own tier-0 store served over loopback TCP by a
// peernet.Server, a consistent-hash ownership ring, and a shared
// read-only PFS. Unlike the simulator-based distributed experiments,
// everything here moves actual bytes through actual sockets — the run
// measures how many PFS data operations the peer network absorbs under
// reshuffled data-parallel sharding.

// PeerRunConfig parameterises one loopback peer-cache run.
type PeerRunConfig struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Files and FileSize shape the shared dataset: Files shards of
	// FileSize bytes each, named data/shard-NNNN.rec.
	Files    int
	FileSize int
	// Epochs is how many passes over the dataset each node makes.
	Epochs int
	// Mode assigns shards to nodes per epoch (ShardReshuffled is the
	// scenario peer caching exists for).
	Mode ShardingMode
	// UsePeers wires the peer tier in; false runs the no-peer baseline
	// with an otherwise identical hierarchy.
	UsePeers bool
	// SSDQuota bounds each node's tier-0 store (0 = unlimited).
	SSDQuota int64
	// Seed drives the per-epoch shard permutations.
	Seed uint64
	// Health tunes each node's tier breaker (zero value = defaults).
	Health core.HealthConfig
	// KillAfterEpoch, when >= 1, closes KillNode's peer server once
	// that many epochs have completed: sibling reads of its files fail
	// over to the PFS and their breakers demote the peer tier. The
	// killed node keeps training — only its serving socket dies. Zero
	// disables the fault.
	KillNode       int
	KillAfterEpoch int
	// TracePath, when non-empty, captures node 0's access trace; the
	// trailer records node 0's measured PFS data ops for the analyzer
	// cross-check.
	TracePath string
}

// PeerRunResult summarises one loopback run.
type PeerRunResult struct {
	// PFSOps is the total data-op count against the shared PFS;
	// NodePFSOps splits it per node.
	PFSOps     int64
	NodePFSOps []int64
	// Stats are each node's final middleware counters.
	Stats []core.Stats
	// PeerTierStates is each node's peer-tier breaker state at the end
	// of the run (all TierHealthy when UsePeers is false).
	PeerTierStates []core.TierState
	// PeerStageErrors sums monarch_errors_total{stage="peer"} across
	// nodes — peer transport/protocol failures, NOT clean misses.
	PeerStageErrors int64
}

// PeerHits sums peer-cache hits across nodes.
func (r *PeerRunResult) PeerHits() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.PeerHits
	}
	return n
}

// peerBarrier is a cyclic barrier for real goroutines (the simulator's
// WaitGroup does not apply here): all n participants block until the
// last arrives, which first runs onRelease with the 0-based round just
// completed.
type peerBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	arrived   int
	round     int
	onRelease func(round int)
}

func newPeerBarrier(n int, onRelease func(int)) *peerBarrier {
	b := &peerBarrier{n: n, onRelease: onRelease}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *peerBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	round := b.round
	b.arrived++
	if b.arrived == b.n {
		if b.onRelease != nil {
			b.onRelease(round)
		}
		b.arrived = 0
		b.round++
		b.cond.Broadcast()
		return
	}
	for round == b.round {
		b.cond.Wait()
	}
}

// peerShardContent is the deterministic content of shard i.
func peerShardContent(i, size int) []byte {
	return bytes.Repeat([]byte{byte(i%251 + 1)}, size)
}

// RunPeerLoopback executes one peer-cache run over real loopback TCP.
func RunPeerLoopback(cfg PeerRunConfig) (*PeerRunResult, error) {
	if cfg.Nodes < 1 || cfg.Files < 1 || cfg.FileSize < 1 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("experiments: bad peer config %+v", cfg)
	}
	ctx := context.Background()

	// Shared dataset.
	pfsRaw := storage.NewMemFS("lustre", 0)
	names := make([]string, cfg.Files)
	for i := range names {
		names[i] = fmt.Sprintf("data/shard-%04d.rec", i)
		if err := pfsRaw.WriteFile(ctx, names[i], peerShardContent(i, cfg.FileSize)); err != nil {
			return nil, err
		}
	}
	pfsRaw.SetReadOnly(true)

	nodeIDs := make([]string, cfg.Nodes)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := peernet.NewRing(nodeIDs, 0)
	if err != nil {
		return nil, err
	}

	// Per-node stores and, with peers on, one serving socket each. The
	// servers must all be listening before any client dials.
	ssds := make([]*storage.MemFS, cfg.Nodes)
	pfss := make([]*storage.Counting, cfg.Nodes)
	servers := make([]*peernet.Server, cfg.Nodes)
	addrs := make([]string, cfg.Nodes)
	for i := range ssds {
		ssds[i] = storage.NewMemFS("ssd-"+nodeIDs[i], cfg.SSDQuota)
		pfss[i] = storage.NewCounting(pfsRaw)
		if cfg.UsePeers {
			srv, err := peernet.NewServer(peernet.ServerConfig{Backend: ssds[i]})
			if err != nil {
				return nil, err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go srv.Serve(ln)
			servers[i] = srv
			addrs[i] = ln.Addr().String()
			defer srv.Close()
		}
	}

	monarchs := make([]*core.Monarch, cfg.Nodes)
	tiers := make([]*peernet.Tier, cfg.Nodes)
	for i := range monarchs {
		levels := []storage.Backend{ssds[i], pfss[i]}
		mcfg := core.Config{
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Health:        cfg.Health,
		}
		if cfg.UsePeers {
			clients := make(map[string]*peernet.Client)
			for j, id := range nodeIDs {
				if j == i {
					continue
				}
				c, err := peernet.NewClient(peernet.ClientConfig{
					Name:    "peer:" + id,
					Dial:    peernet.TCPDialer(addrs[j], 2*time.Second),
					Timeout: 2 * time.Second,
					Retries: 1,
					Backoff: 5 * time.Millisecond,
				})
				if err != nil {
					return nil, err
				}
				clients[id] = c
			}
			tier, err := peernet.NewTier("peers", nodeIDs[i], ring, clients)
			if err != nil {
				return nil, err
			}
			tiers[i] = tier
			defer tier.Close()
			levels = []storage.Backend{ssds[i], tier, pfss[i]}
			mcfg.Peer = core.PeerConfig{
				Tier: 1,
				Owns: func(name string) bool { return ring.Owner(name) == nodeIDs[i] },
			}
		}
		mcfg.Levels = levels
		if i == 0 && cfg.TracePath != "" {
			mcfg.TracePath = cfg.TracePath
		}
		m, err := core.New(mcfg)
		if err != nil {
			return nil, err
		}
		if err := m.Init(ctx); err != nil {
			m.Close()
			return nil, err
		}
		monarchs[i] = m
	}

	// Epoch loop: each node reads its shard slice in full, waits for
	// its placements to settle (so the next epoch sees warm owner
	// caches), then joins the barrier. The last arriver of the kill
	// epoch closes the victim's serving socket.
	barrier := newPeerBarrier(cfg.Nodes, func(round int) {
		if cfg.KillNode >= 0 && cfg.KillNode < cfg.Nodes &&
			round+1 == cfg.KillAfterEpoch && servers[cfg.KillNode] != nil {
			servers[cfg.KillNode].Close()
		}
	})
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for node := 0; node < cfg.Nodes; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := monarchs[node]
			buf := make([]byte, cfg.FileSize)
			for epoch := 1; epoch <= cfg.Epochs; epoch++ {
				for _, shard := range peerShardOrder(cfg.Mode, node, cfg.Nodes, cfg.Files, epoch, cfg.Seed) {
					name := names[shard]
					n, err := m.ReadAt(ctx, name, buf, 0)
					if err != nil {
						errs[node] = fmt.Errorf("node %d epoch %d %s: %w", node, epoch, name, err)
						return
					}
					if n != cfg.FileSize || buf[0] != peerShardContent(shard, 1)[0] {
						errs[node] = fmt.Errorf("node %d epoch %d %s: bad content (n=%d)", node, epoch, name, n)
						return
					}
				}
				if err := waitMonarchIdle(m, 10*time.Second); err != nil {
					errs[node] = fmt.Errorf("node %d epoch %d: %w", node, epoch, err)
					return
				}
				if node == 0 {
					m.MarkTraceEpoch(epoch)
				}
				barrier.await()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &PeerRunResult{
		NodePFSOps:     make([]int64, cfg.Nodes),
		Stats:          make([]core.Stats, cfg.Nodes),
		PeerTierStates: make([]core.TierState, cfg.Nodes),
	}
	for i, m := range monarchs {
		res.Stats[i] = m.Stats()
		res.NodePFSOps[i] = pfss[i].Counts().DataOps()
		res.PFSOps += res.NodePFSOps[i]
		if cfg.UsePeers {
			res.PeerTierStates[i] = m.TierState(1)
		}
		res.PeerStageErrors += int64(m.Registry().Vars()[`monarch_errors_total{stage="peer"}`])
		if i == 0 && cfg.TracePath != "" {
			if tr := m.Tracer(); tr != nil {
				tr.AddSummary(map[string]int64{"pfs_data_ops": res.NodePFSOps[0]})
			}
		}
		m.Close()
	}
	return res, nil
}

// peerShardOrder assigns shard indices to node for one epoch, mirroring
// the simulator experiments' selector semantics.
func peerShardOrder(mode ShardingMode, node, nodes, total, epoch int, seed uint64) []int {
	var order []int
	switch mode {
	case ShardSticky:
		for j := node; j < total; j += nodes {
			order = append(order, j)
		}
	case ShardReshuffled:
		perm := rng.New(seed + uint64(epoch)*0x9e3779b9).Perm(total)
		for pos := node; pos < total; pos += nodes {
			order = append(order, perm[pos])
		}
	default: // ShardNone: every node reads everything.
		for j := 0; j < total; j++ {
			order = append(order, j)
		}
	}
	return order
}

// waitMonarchIdle blocks until background placements settle.
func waitMonarchIdle(m *core.Monarch, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !m.Idle() {
		if time.Now().After(deadline) {
			return fmt.Errorf("placements did not quiesce within %s", timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// peerOwnedQuota sizes each node's tier-0 quota to its ownership share
// of the dataset with a little headroom — the peer-cache premise that
// the cluster's aggregate cache holds the dataset roughly once.
func peerOwnedQuota(nodes, files, fileSize int) int64 {
	ring, err := peernet.NewRing(nodeIDList(nodes), 0)
	if err != nil {
		return 0
	}
	counts := map[string]int64{}
	for i := 0; i < files; i++ {
		counts[ring.Owner(fmt.Sprintf("data/shard-%04d.rec", i))]++
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return (max + 2) * int64(fileSize)
}

func nodeIDList(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	return ids
}

// derivedPFSOps reconstructs the PFS data-op count from one node's
// monarch_ counters: source-served foreground reads plus one whole-file
// fetch per placement that could not reuse a full foreground read.
func derivedPFSOps(s core.Stats) int64 {
	return s.ReadsServed[len(s.ReadsServed)-1] + s.Placements - s.FullReadReuses
}

// AnalyzePeerTrace loads and analyzes a trace captured by
// RunPeerLoopback (node 0's view).
func AnalyzePeerTrace(path string) (*analyze.Analysis, error) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(tr, analyze.Options{}), nil
}

// extPeernet measures the peer cache network over real loopback TCP: 4
// nodes under reshuffled sharding, quota sized to each node's ownership
// share, against the identical no-peer baseline. The PFS-op totals are
// cross-checked two independent ways: against each node's monarch_
// counters and against the trace analyzer's derivation of node 0's
// access trace.
func extPeernet() Experiment {
	return Experiment{
		ID:    "ext-peernet",
		Title: "Extension: peer cache network over loopback TCP",
		Paper: "MONARCH leaves multi-node cache sharing as future work; " +
			"this extension serves tier-0 caches between nodes over a wire protocol " +
			"so reshuffled sharding stops flushing cache value every epoch.",
		Run: func(p Params) (*Outcome, error) {
			const (
				nodes    = 4
				files    = 48
				fileSize = 4096
				epochs   = 6
			)
			cfg := PeerRunConfig{
				Nodes: nodes, Files: files, FileSize: fileSize, Epochs: epochs,
				Mode:     ShardReshuffled,
				SSDQuota: peerOwnedQuota(nodes, files, fileSize),
				Seed:     p.BaseSeed,
			}

			base := cfg
			base.UsePeers = false
			baseline, err := RunPeerLoopback(base)
			if err != nil {
				return nil, err
			}

			tracePath, err := tempTracePath()
			if err != nil {
				return nil, err
			}
			defer os.Remove(tracePath)
			withPeers := cfg
			withPeers.UsePeers = true
			withPeers.TracePath = tracePath
			peers, err := RunPeerLoopback(withPeers)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			t := report.NewTable(
				fmt.Sprintf("peer cache network: %d nodes, %d shards × %d B, %d reshuffled epochs (real TCP)",
					nodes, files, fileSize, epochs),
				"setup", "PFS ops", "peer hits", "peer misses", "placements")
			var basePlace, peerPlace, peerMisses int64
			for _, s := range baseline.Stats {
				basePlace += s.Placements
			}
			for _, s := range peers.Stats {
				peerPlace += s.Placements
				peerMisses += s.PeerMisses
			}
			t.Add("no-peer baseline", report.Count(baseline.PFSOps), "0", "0", report.Count(basePlace))
			t.Add("peer network", report.Count(peers.PFSOps), report.Count(peers.PeerHits()),
				report.Count(peerMisses), report.Count(peerPlace))
			o.Tables = append(o.Tables, t)

			o.check("peer network cuts PFS data ops under reshuffled sharding",
				peers.PFSOps < baseline.PFSOps,
				"%d vs %d ops (%.1f%% saved)", peers.PFSOps, baseline.PFSOps,
				100*reduction(float64(baseline.PFSOps), float64(peers.PFSOps)))
			o.check("sibling caches actually served reads",
				peers.PeerHits() > 0, "%d peer hits", peers.PeerHits())

			var derived int64
			for _, s := range peers.Stats {
				derived += derivedPFSOps(s)
			}
			o.check("measured PFS ops match the monarch_ counters",
				derived == peers.PFSOps,
				"counters derive %d, PFS measured %d", derived, peers.PFSOps)

			a, err := AnalyzePeerTrace(tracePath)
			if err != nil {
				return nil, err
			}
			o.check("trace analyzer agrees with node 0's measured PFS ops",
				a.Complete && a.PFSOps == a.RecordedPFSOps,
				"derived %d, recorded %d (complete=%v)", a.PFSOps, a.RecordedPFSOps, a.Complete)
			o.check("node 0's trace saw peer traffic",
				epochPeerHits(a) > 0, "%d peer-class reads", epochPeerHits(a))
			return o, nil
		},
	}
}

func epochPeerHits(a *analyze.Analysis) int64 {
	var n int64
	for _, e := range a.Epochs {
		n += e.Peer
	}
	return n
}

// tempTracePath returns a fresh .bin path for a short-lived capture.
func tempTracePath() (string, error) {
	f, err := os.CreateTemp("", "monarch-peer-*.bin")
	if err != nil {
		return "", err
	}
	path := f.Name()
	f.Close()
	return path, nil
}
