package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPassChecks runs every registered experiment at
// reduced scale and asserts every built-in shape check against the
// paper's reported behaviour passes.
func TestAllExperimentsPassChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	p := QuickParams()
	p.Cache = NewCache()
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			o, err := exp.Run(p)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(o.Checks) == 0 {
				t.Fatalf("%s produced no checks", exp.ID)
			}
			for _, c := range o.Checks {
				if c.Pass {
					t.Logf("PASS %s — %s", c.Name, c.Detail)
				} else {
					t.Errorf("FAIL %s — %s", c.Name, c.Detail)
				}
			}
			if len(o.Tables) == 0 && len(o.Charts) == 0 {
				t.Errorf("%s produced no tables or charts", exp.ID)
			}
		})
	}
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%q) failed: %v", e.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID should fail for unknown ids")
	}
}

func TestOutcomeRenderAndFailed(t *testing.T) {
	o := &Outcome{}
	o.check("good", true, "fine")
	o.check("bad", false, "broken %d", 7)
	if got := o.Failed(); len(got) != 1 || !strings.Contains(got[0], "broken 7") {
		t.Fatalf("Failed() = %v", got)
	}
	var b strings.Builder
	o.Render(&b)
	out := b.String()
	if !strings.Contains(out, "[PASS] good") || !strings.Contains(out, "[FAIL] bad") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCacheReuses(t *testing.T) {
	p := QuickParams()
	p.Runs = 1
	p.Cache = NewCache()
	ds100, _ := p.Datasets()
	a, err := run(VanillaLocal, "lenet", ds100, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(VanillaLocal, "lenet", ds100, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not reuse the aggregate")
	}
	// Different configuration must miss.
	pp := p
	pp.PlacementThreads++
	c, err := run(VanillaLocal, "lenet", ds100, pp)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("cache conflated distinct configurations")
	}
}

func TestWithinAndReduction(t *testing.T) {
	if !within(100, 105, 0.10) || within(100, 150, 0.10) {
		t.Fatal("within broken")
	}
	if !within(0, 0, 0.1) {
		t.Fatal("within(0,0) should hold")
	}
	if r := reduction(200, 150); r != 0.25 {
		t.Fatalf("reduction = %v", r)
	}
	if reduction(0, 5) != 0 {
		t.Fatal("reduction with zero baseline")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := DefaultParams(0.5)
	if p.SSDQuota() != (115<<30)/2 {
		t.Fatalf("quota = %d", p.SSDQuota())
	}
	ds100, ds200 := p.Datasets()
	if ds100.TotalBytes != 50<<30 || ds200.TotalBytes != 100<<30 {
		t.Fatalf("dataset sizes %d/%d", ds100.TotalBytes, ds200.TotalBytes)
	}
	if p.ScaledDuration(100).Seconds() != 50 {
		t.Fatal("ScaledDuration broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad scale should panic")
		}
	}()
	DefaultParams(2)
}

func TestQuotaCovered(t *testing.T) {
	p := QuickParams()
	_, ds200 := p.Datasets()
	man, err := planFor(ds200)
	if err != nil {
		t.Fatal(err)
	}
	cov := quotaCovered(man, p.SSDQuota())
	// 115 GiB of 200 GiB ≈ 57.5%.
	if cov < 0.5 || cov > 0.65 {
		t.Fatalf("coverage = %v", cov)
	}
	if quotaCovered(man, 0) != 1 || quotaCovered(man, man.TotalBytes()+1) != 1 {
		t.Fatal("degenerate coverage cases")
	}
}
