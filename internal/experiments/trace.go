package experiments

import (
	"monarch/internal/dataset"
)

// CaptureTrace executes one seeded MONARCH run of the standard
// workload — lenet over the larger ds200 dataset, the configuration
// the paper's I/O-savings claims are made on — with access-trace
// capture enabled, writing the trace to path. The returned RunResult
// carries the run's measured counters; the trace trailer additionally
// records the PFS data-op count for the analyzer's cross-check.
func CaptureTrace(p Params, path string) (RunResult, error) {
	p.TracePath = path
	_, ds200 := p.Datasets()
	man, err := dataset.Plan(ds200)
	if err != nil {
		return RunResult{}, err
	}
	return RunOne(Monarch, "lenet", man, p, p.BaseSeed)
}
