package experiments

import (
	"fmt"
	"time"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/pool"
	"monarch/internal/ptloader"
	"monarch/internal/report"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/train"
)

// extPyTorch validates the paper's framework-agnosticism claim (§VI:
// "we are integrating our system with PyTorch") by driving MONARCH with
// a DataLoader-style record-grained random-access pattern instead of
// the TensorFlow pipeline's sequential shard streams.
func extPyTorch() Experiment {
	return Experiment{
		ID:    "ext-pytorch",
		Title: "Extension — PyTorch-style DataLoader over MONARCH (100 GiB, LeNet)",
		Paper: "§VI: the same middleware read call must serve other frameworks; " +
			"the DataLoader's random per-record reads are the stress case",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			mdl, err := models.ByName("lenet")
			if err != nil {
				return nil, err
			}
			type out struct {
				total   time.Duration
				pfsOps  int64
				pfsByte int64
			}
			runOnce := func(useMonarch bool, seed uint64) (out, error) {
				env := sim.NewEnv(seed)
				defer env.Close()
				lustreDev := simstore.NewDevice(env, p.Lustre)
				if p.UseInterference {
					lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
				}
				lustre := simstore.NewStore(lustreDev, "lustre", 0)
				for i := range man.Shards {
					lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
				}
				lustre.SetReadOnly(true)
				pfs := storage.NewCounting(lustre)

				cfg := ptloader.DefaultConfig()
				cfg.Manifest = man
				cfg.PreprocessPerImage = mdl.PreprocessPerImage
				cfg.Source = pfs
				var m *core.Monarch
				if useMonarch {
					ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
					ssd.CopyChunk = p.CopyChunk
					m, err = core.New(core.Config{
						Levels:        []storage.Backend{ssd, pfs},
						Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
						FullFileFetch: true,
					})
					if err != nil {
						return out{}, err
					}
					cfg.Source = m
				}
				refs := ptloader.Flatten(man)
				cpu := sim.NewResource(env, "cpu", p.Node.CPUCores)
				gpu := sim.NewResource(env, "gpu", p.Node.GPUs)
				cfg.CPU = cpu
				var total sim.Time
				var runErr error
				env.Go("pt-train", func(proc *sim.Proc) {
					if m != nil {
						if err := m.Init(proc.Context()); err != nil {
							runErr = err
							return
						}
					}
					start := env.Now()
					for epoch := 0; epoch < p.Epochs; epoch++ {
						ep, err := ptloader.StartEpoch(env, cfg, refs, epoch, seed)
						if err != nil {
							runErr = err
							return
						}
						for {
							_, ok := ep.Next(proc)
							if !ok {
								break
							}
							// One training step per batch.
							gpu.Acquire(proc, gpu.Capacity())
							proc.Sleep(mdl.StepTime)
							gpu.Release(gpu.Capacity())
						}
						if err := ep.Err(); err != nil {
							runErr = err
							return
						}
					}
					total = env.Now() - start
				})
				if err := env.Run(); err != nil {
					return out{}, err
				}
				if runErr != nil {
					return out{}, runErr
				}
				c := pfs.Counts()
				return out{total: total.Duration(), pfsOps: c.DataOps(), pfsByte: c.BytesRead}, nil
			}

			var vTime, mTime, vOps, mOps float64
			runs := p.Runs
			for r := 0; r < runs; r++ {
				seed := p.BaseSeed + uint64(r)*7919
				v, err := runOnce(false, seed)
				if err != nil {
					return nil, err
				}
				m, err := runOnce(true, seed)
				if err != nil {
					return nil, err
				}
				vTime += v.total.Seconds() / float64(runs)
				mTime += m.total.Seconds() / float64(runs)
				vOps += float64(v.pfsOps) / float64(runs)
				mOps += float64(m.pfsOps) / float64(runs)
			}

			o := &Outcome{}
			t := report.NewTable("PyTorch-style DataLoader (LeNet, 100 GiB, mean over runs)",
				"setup", "total time", "PFS ops")
			t.Add("vanilla-lustre", report.Seconds(vTime), report.Count(int64(vOps)))
			t.Add("monarch", report.Seconds(mTime), report.Count(int64(mOps)))
			o.Tables = append(o.Tables, t)

			o.check("MONARCH serves the DataLoader pattern with a speed-up",
				mTime < 0.9*vTime, "monarch %.1f vs vanilla %.1f s", mTime, vTime)
			o.check("MONARCH cuts PFS ops under record-grained access",
				mOps < 0.7*vOps, "monarch %.0f vs vanilla %.0f ops", mOps, vOps)
			// Record-grained access issues roughly one op per record —
			// far more ops than the TF pipeline's 256 KiB streams.
			expect := float64(man.NumRecords() * p.Epochs)
			o.check("vanilla DataLoader op count matches per-record geometry",
				within(vOps, expect, 0.25), "measured %.0f vs %.0f records read", vOps, expect)
			return o, nil
		},
	}
}

// extDistributed explores §VI's distributed-training direction: N nodes
// sharing one Lustre, as concurrent replicated jobs and as
// data-parallel partitions with sticky vs reshuffled shard assignment.
func extDistributed() Experiment {
	return Experiment{
		ID:    "ext-distributed",
		Title: "Extension — multi-node training against one shared PFS (100 GiB, LeNet)",
		Paper: "§VI: distributed training raises new placement questions as nodes need " +
			"different shards; §I: concurrent I/O-intensive jobs saturate the PFS",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			runs := p.Runs
			if runs > 3 {
				runs = 3 // 3 configurations × N nodes each; keep bounded
			}
			mean := func(nodes int, mode ShardingMode, useMonarch bool) (DistResult, error) {
				var agg DistResult
				for r := 0; r < runs; r++ {
					d, err := RunDistributed(man, p, nodes, mode, useMonarch, p.BaseSeed+uint64(r)*7919)
					if err != nil {
						return DistResult{}, err
					}
					agg.Nodes = d.Nodes
					agg.JobTime += d.JobTime / time.Duration(runs)
					agg.PFSOps += d.PFSOps / int64(runs)
					agg.PFSBytes += d.PFSBytes / int64(runs)
					agg.Placements += d.Placements / int64(runs)
				}
				return agg, nil
			}

			o := &Outcome{}
			t := report.NewTable("concurrent replicated jobs (each node reads the full dataset)",
				"nodes", "setup", "job time", "PFS ops")
			type pair struct{ vanilla, monarch DistResult }
			repl := map[int]pair{}
			for _, n := range []int{1, 2, 4} {
				v, err := mean(n, ShardNone, false)
				if err != nil {
					return nil, err
				}
				m, err := mean(n, ShardNone, true)
				if err != nil {
					return nil, err
				}
				repl[n] = pair{v, m}
				t.Add(fmt.Sprintf("%d", n), "vanilla-lustre",
					report.Seconds(v.JobTime.Seconds()), report.Count(v.PFSOps))
				t.Add("", "monarch",
					report.Seconds(m.JobTime.Seconds()), report.Count(m.PFSOps))
			}
			o.Tables = append(o.Tables, t)

			t2 := report.NewTable("data-parallel partitions (each epoch covers the dataset once)",
				"nodes", "sharding", "job time", "PFS ops", "placements")
			sticky4, err := mean(4, ShardSticky, true)
			if err != nil {
				return nil, err
			}
			reshuf4, err := mean(4, ShardReshuffled, true)
			if err != nil {
				return nil, err
			}
			vanilla4, err := mean(4, ShardSticky, false)
			if err != nil {
				return nil, err
			}
			t2.Add("4", "vanilla (any)", report.Seconds(vanilla4.JobTime.Seconds()),
				report.Count(vanilla4.PFSOps), "0")
			t2.Add("4", "monarch sticky", report.Seconds(sticky4.JobTime.Seconds()),
				report.Count(sticky4.PFSOps), report.Count(sticky4.Placements))
			t2.Add("4", "monarch reshuffled", report.Seconds(reshuf4.JobTime.Seconds()),
				report.Count(reshuf4.PFSOps), report.Count(reshuf4.Placements))
			o.Tables = append(o.Tables, t2)

			o.check("concurrent vanilla jobs saturate the shared PFS (paper §I)",
				repl[4].vanilla.JobTime > 2*repl[1].vanilla.JobTime,
				"4 nodes %.1f s vs 1 node %.1f s",
				repl[4].vanilla.JobTime.Seconds(), repl[1].vanilla.JobTime.Seconds())
			o.check("MONARCH improves multi-job scaling",
				repl[4].monarch.JobTime < repl[4].vanilla.JobTime,
				"monarch %.1f vs vanilla %.1f s",
				repl[4].monarch.JobTime.Seconds(), repl[4].vanilla.JobTime.Seconds())
			o.check("MONARCH cuts aggregate PFS ops across concurrent jobs",
				repl[4].monarch.PFSOps < repl[4].vanilla.PFSOps*2/3,
				"%d vs %d ops", repl[4].monarch.PFSOps, repl[4].vanilla.PFSOps)
			o.check("sticky sharding keeps per-node caches valid",
				sticky4.PFSOps < vanilla4.PFSOps/2,
				"sticky %d vs vanilla %d ops", sticky4.PFSOps, vanilla4.PFSOps)
			o.check("reshuffled sharding erodes cache benefit (the paper's open question)",
				reshuf4.PFSOps > sticky4.PFSOps*3/2,
				"reshuffled %d vs sticky %d ops", reshuf4.PFSOps, sticky4.PFSOps)
			return o, nil
		},
	}
}

// traceTimeline charts PFS throughput over virtual time: vanilla's flat
// plateau vs MONARCH's epoch-1 bulk transfer followed by silence.
func traceTimeline() Experiment {
	return Experiment{
		ID:    "trace-timeline",
		Title: "Diagnostic — PFS throughput over time (100 GiB, LeNet, one seed)",
		Paper: "implied by §IV-A: with MONARCH, PFS traffic concentrates in epoch 1 and " +
			"drops to zero once the dataset is placed",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			man, err := dataset.Plan(ds100)
			if err != nil {
				return nil, err
			}
			runOnce := func(setup Setup) (*simstore.Timeline, time.Duration, error) {
				env := sim.NewEnv(p.BaseSeed)
				defer env.Close()
				r, err := buildRig(env, setup, man, p)
				if err != nil {
					return nil, 0, err
				}
				// Locate the lustre device through the rig's counting
				// wrapper chain: both setups wrap a simstore.Store.
				store, ok := r.pfs.Backend.(*simstore.Store)
				if !ok {
					return nil, 0, fmt.Errorf("trace-timeline: unexpected PFS backend")
				}
				tl := simstore.NewTimeline(time.Duration(float64(20*time.Second) * p.Scale * 16))
				store.Device().SetTimeline(tl)

				mdl, err := models.ByName("lenet")
				if err != nil {
					return nil, 0, err
				}
				pcfg := p.Pipeline
				pcfg.Manifest = man
				pcfg.Source = r.source
				var total time.Duration
				var runErr error
				env.Go("run", func(proc *sim.Proc) {
					if r.init != nil {
						if err := r.init(proc.Context()); err != nil {
							runErr = err
							return
						}
					}
					tr, err := train.Run(proc, train.Config{
						Model:    mdl,
						Node:     p.Node,
						Epochs:   p.Epochs,
						Pipeline: pcfg,
						Seed:     p.BaseSeed,
					})
					if err != nil {
						runErr = err
						return
					}
					total = tr.Total
				})
				if err := env.Run(); err != nil {
					return nil, 0, err
				}
				return tl, total, runErr
			}

			vTL, vTotal, err := runOnce(VanillaLustre)
			if err != nil {
				return nil, err
			}
			mTL, mTotal, err := runOnce(Monarch)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			chart := report.NewBarChart(fmt.Sprintf(
				"PFS throughput per %.0f s bucket (MiB/s)", vTL.Bucket().Seconds()))
			buckets := vTL.Len()
			if mTL.Len() > buckets {
				buckets = mTL.Len()
			}
			for i := 0; i < buckets; i++ {
				grp := fmt.Sprintf("t%02d", i)
				chart.Add(grp, "vanilla-lustre", vTL.Rate(i)/(1<<20), 0, "")
				chart.Add(grp, "monarch", mTL.Rate(i)/(1<<20), 0, "")
			}
			o.Charts = append(o.Charts, chart)

			// Vanilla keeps a PFS plateau through the final third of its
			// run; MONARCH's PFS traffic there is near zero. Windows are
			// derived from each run's *duration* (the timeline only
			// extends to the last op).
			vBuckets := int(vTotal/vTL.Bucket()) + 1
			mBuckets := int(mTotal/mTL.Bucket()) + 1
			vTail := vTL.MeanRate(2*vBuckets/3, vBuckets)
			mTail := mTL.MeanRate(2*mBuckets/3, mBuckets)
			o.check("vanilla PFS traffic persists all run",
				vTail > 0.3*vTL.MeanRate(0, vBuckets),
				"tail %.1f vs overall %.1f MiB/s", vTail/(1<<20), vTL.MeanRate(0, vBuckets)/(1<<20))
			o.check("MONARCH PFS traffic collapses after placement",
				mTail < 0.05*vTail+1,
				"monarch tail %.2f vs vanilla tail %.1f MiB/s", mTail/(1<<20), vTail/(1<<20))
			o.check("both runs moved the dataset's bytes",
				vTL.Total() >= float64(man.TotalBytes()*int64(p.Epochs))*0.95 &&
					mTL.Total() >= float64(man.TotalBytes())*0.95,
				"vanilla %.1f GiB, monarch %.1f GiB", vTL.Total()/(1<<30), mTL.Total()/(1<<30))
			return o, nil
		},
	}
}
