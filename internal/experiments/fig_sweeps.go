package experiments

import (
	"fmt"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/models"
	"monarch/internal/report"
)

// time1 converts a float nanosecond count back to a duration.
func time1(ns float64) time.Duration { return time.Duration(ns) }

// runStepScaled runs (vanilla, monarch) over ds with a LeNet profile
// whose GPU step time is scaled by f, returning mean totals and the
// vanilla run's GPU utilisation.
func runStepScaled(p Params, ds dataset.Spec, f float64) (vanillaMean, monarchMean, vanillaGPU float64, err error) {
	man, err := dataset.Plan(ds)
	if err != nil {
		return 0, 0, 0, err
	}
	mdl := models.LeNet()
	mdl.Name = fmt.Sprintf("lenet-x%g", f)
	mdl.StepTime = time1(float64(mdl.StepTime) * f)
	for _, setup := range []Setup{VanillaLustre, Monarch} {
		var total, gpu float64
		for r := 0; r < p.Runs; r++ {
			res, err := RunOneModel(setup, mdl, man, p, p.BaseSeed+uint64(r)*7919)
			if err != nil {
				return 0, 0, 0, err
			}
			total += res.Train.Total.Seconds() / float64(p.Runs)
			gpu += res.Train.GPUUtil / float64(p.Runs)
		}
		if setup == VanillaLustre {
			vanillaMean, vanillaGPU = total, gpu
		} else {
			monarchMean = total
		}
	}
	return vanillaMean, monarchMean, vanillaGPU, nil
}

// ablPFSSpeed sweeps the PFS's bandwidth to locate the crossover where
// tiering stops paying: as the shared file system approaches the local
// SSD's speed, MONARCH's benefit must vanish (and never go negative
// beyond noise). This bounds the paper's claims: they hold *because*
// Frontera's per-client Lustre share is well below local-SSD speed.
func ablPFSSpeed() Experiment {
	return Experiment{
		ID:    "abl-pfs-speed",
		Title: "Ablation — PFS speed sensitivity (100 GiB, LeNet)",
		Paper: "implied by §II: the gap between Lustre and local storage is the entire " +
			"opportunity; a fast-enough PFS leaves nothing to win",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("PFS bandwidth sweep (mean over runs)",
				"PFS speed", "vanilla total", "monarch total", "benefit")
			factors := []float64{0.5, 1, 2, 4}
			benefits := make([]float64, len(factors))
			for i, f := range factors {
				pp := p
				pp.Lustre.ReadBandwidth *= f
				pp.Lustre.WriteBandwidth *= f
				pp.Lustre.PerOpCost = time1(float64(pp.Lustre.PerOpCost) / f)
				vanilla, err := RunMany(VanillaLustre, "lenet", ds100, pp)
				if err != nil {
					return nil, err
				}
				mon, err := RunMany(Monarch, "lenet", ds100, pp)
				if err != nil {
					return nil, err
				}
				benefits[i] = reduction(vanilla.TotalTime.Mean(), mon.TotalTime.Mean())
				t.Add(fmt.Sprintf("%.1fx", f),
					report.Seconds(vanilla.TotalTime.Mean()),
					report.Seconds(mon.TotalTime.Mean()),
					fmt.Sprintf("%+.0f%%", -100*benefits[i]))
			}
			o.Tables = append(o.Tables, t)

			o.check("benefit grows as the PFS slows (0.5x vs 1x)",
				benefits[0] > benefits[1],
				"0.5x: −%.0f%%, 1x: −%.0f%%", 100*benefits[0], 100*benefits[1])
			o.check("benefit shrinks toward the crossover (4x PFS)",
				benefits[3] < benefits[1],
				"4x: −%.0f%%, 1x: −%.0f%%", 100*benefits[3], 100*benefits[1])
			// At 4x the PFS (1.7 GiB/s) outpaces the SSD (0.5 GiB/s):
			// the hierarchy's "descending performance" premise (§III-A)
			// is inverted, so tiering must stop helping — and may hurt,
			// since MONARCH would demote reads to the slower device.
			// That is the crossover this sweep exists to locate.
			o.check("crossover found: tiering stops paying once the PFS outpaces tier 0",
				benefits[3] <= 0.02,
				"benefit at 4x PFS: %+.0f%%", 100*benefits[3])
			return o, nil
		},
	}
}

// ablCompute sweeps the model's GPU step time across the I/O-bound to
// compute-bound continuum. LeNet, AlexNet and ResNet-50 are three
// points on this curve (the paper's model selection); the sweep shows
// the whole law: MONARCH's benefit decays to zero as compute starts to
// dominate, which is exactly why the paper's ResNet-50 bars are flat.
func ablCompute() Experiment {
	return Experiment{
		ID:    "abl-compute",
		Title: "Ablation — GPU step-time sweep: I/O-bound to compute-bound (100 GiB)",
		Paper: "§II/§IV: LeNet and AlexNet benefit because they are I/O-bound; " +
			"ResNet-50 does not because it is compute-bound",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("step-time sweep (LeNet profile scaled, mean over runs)",
				"step scale", "vanilla total", "monarch total", "benefit", "vanilla GPU util")
			scales := []float64{0.25, 1, 4, 16}
			benefits := make([]float64, len(scales))
			for i, f := range scales {
				// Sweep by scaling where the paper's models differ: the
				// per-batch GPU time. The harness resolves models by
				// name, so express the sweep as a step-time multiplier
				// threaded through a custom experiments run.
				vanilla, mon, gpuUtil, err := runStepScaled(p, ds100, f)
				if err != nil {
					return nil, err
				}
				benefits[i] = reduction(vanilla, mon)
				t.Add(fmt.Sprintf("%.2gx", f),
					report.Seconds(vanilla), report.Seconds(mon),
					fmt.Sprintf("−%.0f%%", 100*benefits[i]),
					report.Percent(gpuUtil))
			}
			o.Tables = append(o.Tables, t)
			o.check("I/O-bound end benefits most (0.25x step)",
				benefits[0] >= benefits[1]-0.03,
				"0.25x: −%.0f%%, 1x: −%.0f%%", 100*benefits[0], 100*benefits[1])
			o.check("benefit decays as compute grows (16x step ≈ ResNet regime)",
				benefits[3] < 0.08 && benefits[3] < benefits[1],
				"16x: −%.0f%%, 1x: −%.0f%%", 100*benefits[3], 100*benefits[1])
			o.check("benefit is monotone along the continuum (within noise)",
				benefits[1] >= benefits[2]-0.05 && benefits[2] >= benefits[3]-0.05,
				"benefits: %.2f %.2f %.2f %.2f", benefits[0], benefits[1], benefits[2], benefits[3])
			return o, nil
		},
	}
}

// ablReaders sweeps the pipeline's parallel-read width. The paper
// enables "I/O parallelism" in TensorFlow without quantifying it; the
// sweep shows why it matters on a high-latency PFS (single-stream reads
// cannot fill the shared pipe) and that MONARCH's benefit is robust to
// the setting.
func ablReaders() Experiment {
	return Experiment{
		ID:    "abl-readers",
		Title: "Ablation — parallel-read width (100 GiB, LeNet)",
		Paper: "§II enables TensorFlow's I/O parallelism; latency-bound single-stream " +
			"reads would otherwise starve the pipeline",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("reader-width sweep (mean over runs)",
				"readers", "vanilla total", "monarch total", "benefit")
			widths := []int{1, 4, 16, 32}
			vanilla := make([]float64, len(widths))
			benefit := make([]float64, len(widths))
			for i, w := range widths {
				pp := p
				pp.Pipeline.Readers = w
				v, err := RunMany(VanillaLustre, "lenet", ds100, pp)
				if err != nil {
					return nil, err
				}
				m, err := RunMany(Monarch, "lenet", ds100, pp)
				if err != nil {
					return nil, err
				}
				vanilla[i] = v.TotalTime.Mean()
				benefit[i] = reduction(v.TotalTime.Mean(), m.TotalTime.Mean())
				t.Add(fmt.Sprintf("%d", w),
					report.Seconds(v.TotalTime.Mean()),
					report.Seconds(m.TotalTime.Mean()),
					fmt.Sprintf("−%.0f%%", 100*benefit[i]))
			}
			o.Tables = append(o.Tables, t)
			o.check("parallel reads are required on a high-latency PFS",
				vanilla[0] > 1.5*vanilla[2],
				"1 reader %.1f s vs 16 readers %.1f s", vanilla[0], vanilla[2])
			o.check("width has diminishing returns once the PFS pipe saturates",
				within(vanilla[3], vanilla[2], 0.15),
				"32 readers %.1f s vs 16 readers %.1f s", vanilla[3], vanilla[2])
			o.check("MONARCH helps at every practical width",
				benefit[1] > 0.1 && benefit[2] > 0.1 && benefit[3] > 0.1,
				"benefits: %.0f%% %.0f%% %.0f%%", 100*benefit[1], 100*benefit[2], 100*benefit[3])
			return o, nil
		},
	}
}

// ablCoverage sweeps the dataset-size-to-quota ratio: MONARCH's op
// reduction should track the cached fraction (the partial-caching law
// behind the paper's 200 GiB result), degrading gracefully — never a
// cliff — as the dataset outgrows the tier.
func ablCoverage() Experiment {
	return Experiment{
		ID:    "abl-coverage",
		Title: "Ablation — dataset size vs tier-0 quota (LeNet)",
		Paper: "§IV: with 115 GiB of 200 GiB cachable, steady-state PFS ops fall to the " +
			"uncached share; the law should hold at any ratio",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			o := &Outcome{}
			t := report.NewTable("coverage sweep (mean over runs)",
				"dataset/quota", "covered", "steady-state PFS ops remaining", "total time vs vanilla")
			ratios := []float64{0.5, 1.5, 3.0}
			remaining := make([]float64, len(ratios))
			for i, ratio := range ratios {
				spec := ds100
				spec.Name = fmt.Sprintf("cov-%03.0f", ratio*100)
				spec.TotalBytes = int64(float64(p.SSDQuota()) * ratio)
				spec.NumImages = int(float64(spec.TotalBytes) / float64(ds100.TotalBytes) * float64(ds100.NumImages))
				spec.NumShards = int(float64(spec.TotalBytes) / float64(ds100.TotalBytes) * float64(ds100.NumShards))
				if spec.NumShards < 2 {
					spec.NumShards = 2
				}
				if spec.NumImages < spec.NumShards {
					spec.NumImages = spec.NumShards
				}
				vanilla, err := RunMany(VanillaLustre, "lenet", spec, p)
				if err != nil {
					return nil, err
				}
				mon, err := RunMany(Monarch, "lenet", spec, p)
				if err != nil {
					return nil, err
				}
				covered := 1.0
				if ratio > 1 {
					covered = 1 / ratio
				}
				last := p.Epochs - 1
				remaining[i] = mon.PFSOps[last].Mean() / vanilla.PFSOps[last].Mean()
				t.Add(fmt.Sprintf("%.1fx", ratio), report.Percent(covered),
					report.Percent(remaining[i]),
					fmt.Sprintf("−%.0f%%", 100*reduction(vanilla.TotalTime.Mean(), mon.TotalTime.Mean())))

				o.check(fmt.Sprintf("steady-state remainder tracks the uncached share at %.1fx", ratio),
					within(remaining[i], 1-covered, 0.15) || (covered == 1 && remaining[i] < 0.05),
					"remaining %.0f%% vs uncached %.0f%%", 100*remaining[i], 100*(1-covered))
			}
			o.Tables = append(o.Tables, t)
			o.check("degradation is graceful (remainder monotone in dataset size)",
				remaining[0] <= remaining[1]+0.05 && remaining[1] <= remaining[2]+0.05,
				"remainders: %.2f %.2f %.2f", remaining[0], remaining[1], remaining[2])
			return o, nil
		},
	}
}
