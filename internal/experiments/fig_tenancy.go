package experiments

import (
	"context"
	"fmt"
	"time"

	"monarch/internal/core"
	"monarch/internal/pool"
	"monarch/internal/report"
	"monarch/internal/storage"
)

// tenancyResult is one policy configuration's outcome in the
// ext-tenancy duel.
type tenancyResult struct {
	stats   core.Stats
	pfsOps  int64
	hitRate float64 // combined across both jobs
}

// runTenancy drives the two-job contention workload against one SSD
// tier over real backends (MemFS + goroutine pool, no simulator):
//
//   - jobA: 64 cold shards, scanned once per epoch — the paper's
//     uniform access pattern.
//   - jobB: 16 hot shards, read four times per epoch — a skewed
//     fine-tuning-style job that arrives at epoch 2, after jobA's
//     first scan has already filled the tier.
//
// The tier holds 40 of the 80 shards. With no eviction, whatever
// jobA's first scan placed stays resident forever and the late hot job
// is starved. The heat engine must reclaim the borrower's cold shards
// (quota shares put each job's guarantee at half the tier) and keep
// the hot set resident. Reads are serialized against the placement
// pool so eviction decisions are reproducible, mirroring the
// abl-eviction methodology.
func runTenancy(policy core.EvictionPolicy, shares bool) (tenancyResult, error) {
	const (
		coldFiles = 64
		hotFiles  = 16
		fileSize  = 4096
		tierCap   = 40 * fileSize
		epochs    = 6
	)
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	for i := 0; i < coldFiles; i++ {
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("jobA/f%02d", i), make([]byte, fileSize)); err != nil {
			return tenancyResult{}, err
		}
	}
	for i := 0; i < hotFiles; i++ {
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("jobB/f%02d", i), make([]byte, fileSize)); err != nil {
			return tenancyResult{}, err
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := storage.NewCounting(pfsRaw)
	cfg := core.Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", tierCap), pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Eviction:      policy,
		// Namespace attribution is on for every run so the per-job
		// fairness counters are comparable; only the heat run declares
		// guaranteed shares.
		JobOf: core.JobFromPath,
	}
	if shares {
		cfg.Tenants = []core.TenantConfig{{Job: "jobA", Share: 0.5}, {Job: "jobB", Share: 0.5}}
	}
	m, err := core.New(cfg)
	if err != nil {
		return tenancyResult{}, err
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		return tenancyResult{}, err
	}

	buf := make([]byte, fileSize)
	read := func(name string) error {
		if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
			return fmt.Errorf("read %s: %w", name, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !m.Idle() {
			if time.Now().After(deadline) {
				return fmt.Errorf("placement pool did not quiesce after %s", name)
			}
			time.Sleep(50 * time.Microsecond)
		}
		return nil
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		for i := 0; i < coldFiles; i++ {
			if err := read(fmt.Sprintf("jobA/f%02d", i)); err != nil {
				return tenancyResult{}, err
			}
			// The hot job interleaves four passes over its shards with
			// jobA's scan, starting at epoch 2.
			if epoch >= 2 {
				if err := read(fmt.Sprintf("jobB/f%02d", i%hotFiles)); err != nil {
					return tenancyResult{}, err
				}
			}
		}
		m.MarkEpoch(epoch)
	}

	st := m.Stats()
	var reads, hits int64
	for lvl, n := range st.ReadsServed {
		reads += n
		if lvl != len(st.ReadsServed)-1 {
			hits += n
		}
	}
	res := tenancyResult{stats: st, pfsOps: pfs.Counts().Ops[storage.OpRead]}
	if reads > 0 {
		res.hitRate = float64(hits) / float64(reads)
	}
	return res, nil
}

// extTenancy is the multi-tenant duel behind DESIGN.md §12: two jobs
// with skewed access competing for one SSD tier, no-eviction vs LRU vs
// the heat engine with per-job quota shares.
func extTenancy() Experiment {
	return Experiment{
		ID:    "ext-tenancy",
		Title: "Extension — multi-tenant tiering: heat-driven eviction vs the paper's no-eviction stance",
		Paper: "beyond §III-A: the paper's no-eviction argument assumes one job with uniform " +
			"once-per-epoch access; with a second, skewed job sharing the tier, static " +
			"placement starves the late arrival (cf. Herodotou's tiered-storage automation " +
			"and Pangea's heat-based placement), while heat-driven eviction with per-job " +
			"quota shares keeps the hot set resident without churning the cold scan",
		Run: func(p Params) (*Outcome, error) {
			none, err := runTenancy(nil, false)
			if err != nil {
				return nil, err
			}
			lru, err := runTenancy(core.NewLRU(), false)
			if err != nil {
				return nil, err
			}
			heat, err := runTenancy(core.NewHeatPolicy(core.HeatConfig{}), true)
			if err != nil {
				return nil, err
			}

			o := &Outcome{}
			tbl := report.NewTable("two jobs, one SSD tier (jobA: 64 cold shards 1x/epoch; jobB: 16 hot shards 4x/epoch from epoch 2; tier holds 40 of 80)",
				"policy", "hit ratio", "jobA hits", "jobB hits", "evictions", "promotions", "PFS reads")
			for _, row := range []struct {
				name string
				r    tenancyResult
			}{{"no eviction (paper)", none}, {"lru (ablation)", lru}, {"heat + quotas", heat}} {
				ja, jb := row.r.stats.Jobs["jobA"], row.r.stats.Jobs["jobB"]
				tbl.Add(row.name,
					report.Percent(row.r.hitRate),
					report.Count(ja.Hits),
					report.Count(jb.Hits),
					report.Count(row.r.stats.Evictions),
					report.Count(row.r.stats.Promotions),
					report.Count(row.r.pfsOps))
			}
			o.Tables = append(o.Tables, tbl)

			o.check("heat-driven policy beats no-eviction on combined hit ratio",
				heat.hitRate > none.hitRate,
				"heat %.1f%% vs no-eviction %.1f%%", 100*heat.hitRate, 100*none.hitRate)
			o.check("no-eviction starves the late-arriving hot job",
				none.stats.Evictions == 0 && none.stats.Jobs["jobB"].Hits == 0,
				"%d evictions, %d jobB hits", none.stats.Evictions, none.stats.Jobs["jobB"].Hits)
			o.check("heat engine serves the hot job from the fast tier",
				heat.stats.Jobs["jobB"].HitRatio() > 0.8,
				"jobB hit ratio %.1f%%", 100*heat.stats.Jobs["jobB"].HitRatio())
			o.check("quota reclaim charges the over-share borrower, not the hot job",
				heat.stats.Jobs["jobA"].Evictions > 0 && heat.stats.Jobs["jobB"].Evictions == 0,
				"jobA evicted %d times, jobB %d", heat.stats.Jobs["jobA"].Evictions, heat.stats.Jobs["jobB"].Evictions)
			o.check("margin keeps the cold scan's residual share resident (no LRU-style churn)",
				heat.stats.Jobs["jobA"].Hits > 0 && heat.stats.Evictions < lru.stats.Evictions,
				"jobA hits %d; heat evicted %d vs LRU %d",
				heat.stats.Jobs["jobA"].Hits, heat.stats.Evictions, lru.stats.Evictions)
			return o, nil
		},
	}
}
