package experiments

import (
	"path/filepath"
	"testing"

	"monarch/internal/core"
)

// TestExtPeernetChecksPass runs the full loopback experiment — 4 nodes
// over real TCP, peer network vs no-peer baseline — and requires every
// cross-check to hold.
func TestExtPeernetChecksPass(t *testing.T) {
	o, err := extPeernet().Run(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	if failed := o.Failed(); len(failed) > 0 {
		t.Fatalf("checks failed: %v", failed)
	}
}

// TestPeerLoopbackFaultInjection kills one node's serving socket after
// the first epoch: the run must complete (PFS fallback), the survivors'
// breakers must demote the peer tier, and the error counters plus the
// trace's tier-state events must account for the failures.
func TestPeerLoopbackFaultInjection(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "fault.bin")
	res, err := RunPeerLoopback(PeerRunConfig{
		Nodes: 4, Files: 32, FileSize: 2048, Epochs: 4,
		Mode:     ShardReshuffled,
		UsePeers: true,
		SSDQuota: peerOwnedQuota(4, 32, 2048, 1),
		Seed:     7,
		// One failed peer read trips the breaker: the victim's files are
		// never served by anyone else, so waiting out the default
		// threshold only adds noise.
		Health:    core.HealthConfig{ReadErrorThreshold: 1},
		KillNode:  1, KillAfterEpoch: 1,
		TracePath: tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Survivors that read a victim-owned file post-kill must have
	// tripped; at minimum one node demoted its peer tier.
	downs := 0
	for i, st := range res.PeerTierStates {
		if i == 1 {
			// The killed node's own clients point at live siblings; its
			// breaker state is not the subject here.
			continue
		}
		if st == core.TierDown {
			downs++
		}
	}
	if downs == 0 {
		t.Fatalf("no surviving node demoted the peer tier: %v", res.PeerTierStates)
	}

	if res.PeerStageErrors == 0 {
		t.Fatal(`monarch_errors_total{stage="peer"} stayed zero through a dead peer`)
	}
	// Every peer-stage error is a fallback re-served from the PFS, and
	// nothing else in this run can fall back — the two counters must
	// agree exactly.
	var fallbacks int64
	for _, s := range res.Stats {
		fallbacks += s.Fallbacks
	}
	if fallbacks != res.PeerStageErrors {
		t.Fatalf("fallbacks %d != peer-stage errors %d", fallbacks, res.PeerStageErrors)
	}

	// Node 0's trace must carry the tier-down transition (threshold 1:
	// its first post-kill read of a victim-owned file trips it).
	a, err := AnalyzePeerTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tierDowns := 0
	for _, tr := range a.Transitions {
		if tr.Kind == "tier-down" {
			tierDowns++
		}
	}
	if res.Stats[0].TierTrips > 0 && tierDowns == 0 {
		t.Fatalf("node 0 tripped %d times but its trace has no tier-down event", res.Stats[0].TierTrips)
	}
	if res.Stats[0].TierTrips == 0 {
		t.Fatalf("node 0 never tripped; pick a different seed so the assertion has teeth")
	}
	if !a.Complete {
		t.Fatal("trace did not close cleanly")
	}
}

// TestPeerLoopbackStickyShardingNeedsNoPeers pins the contrast case:
// under sticky sharding each node re-reads its own cached shards, so
// the peer tier sees essentially no traffic.
func TestPeerLoopbackStickyShardingNeedsNoPeers(t *testing.T) {
	res, err := RunPeerLoopback(PeerRunConfig{
		Nodes: 2, Files: 16, FileSize: 1024, Epochs: 3,
		Mode:     ShardSticky,
		UsePeers: true,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sticky assignment ignores ownership, so a node's shards may be
	// owned elsewhere; but every shard is read by the same node each
	// epoch. Non-owned shards are peer-routed each time (miss: the
	// owner never reads them, so never caches them) — they still reach
	// the PFS. Owned shards go local after epoch 1.
	var local int64
	for _, s := range res.Stats {
		local += s.ReadsServed[0]
	}
	if local == 0 {
		t.Fatal("sticky re-reads never hit the local tier")
	}
	if res.PeerHits() != 0 {
		t.Fatalf("sticky sharding produced %d peer hits; owners never cache foreign-read shards", res.PeerHits())
	}
}

func TestPeerRunConfigValidation(t *testing.T) {
	if _, err := RunPeerLoopback(PeerRunConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
