package experiments

import (
	"fmt"

	"monarch/internal/models"
)

var paperModels = []string{"lenet", "alexnet", "resnet50"}

// fig1 reproduces the motivation figure: per-epoch training time for
// the three vanilla setups on the dataset that fits the local SSD.
func fig1() Experiment {
	return Experiment{
		ID:    "fig1",
		Title: "Figure 1 — motivation: training time per epoch, 100 GiB dataset",
		Paper: "vanilla-local cuts LeNet total time 46% and AlexNet 18% vs vanilla-lustre; " +
			"vanilla-caching cuts 24% / 11% with a slower first epoch; ResNet-50 is flat; " +
			"lustre runs show the highest variability",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			setups := []Setup{VanillaLustre, VanillaLocal, VanillaCaching}
			mx, err := runMatrix(p, setups, paperModels, ds100)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			for _, m := range paperModels {
				aggs := []*Aggregate{mx[VanillaLustre][m], mx[VanillaLocal][m], mx[VanillaCaching][m]}
				o.Charts = append(o.Charts, trainingChart(
					fmt.Sprintf("Fig. 1 [%s] — training time (mean ± std over %d runs)", m, p.Runs),
					p.Epochs, aggs))
			}

			lustre, local, caching := mx[VanillaLustre], mx[VanillaLocal], mx[VanillaCaching]
			redLocal := reduction(lustre["lenet"].TotalTime.Mean(), local["lenet"].TotalTime.Mean())
			o.check("local beats lustre for LeNet (paper: −46%)",
				redLocal > 0.25 && redLocal < 0.65, "measured −%.0f%%", 100*redLocal)
			redLocalAlex := reduction(lustre["alexnet"].TotalTime.Mean(), local["alexnet"].TotalTime.Mean())
			o.check("local beats lustre for AlexNet (paper: −18%)",
				redLocalAlex > 0.05 && redLocalAlex < 0.50, "measured −%.0f%%", 100*redLocalAlex)
			redCache := reduction(lustre["lenet"].TotalTime.Mean(), caching["lenet"].TotalTime.Mean())
			o.check("caching beats lustre for LeNet (paper: −24%)",
				redCache > 0.10 && redCache < 0.55, "measured −%.0f%%", 100*redCache)
			o.check("caching between lustre and local for LeNet",
				caching["lenet"].TotalTime.Mean() > local["lenet"].TotalTime.Mean() &&
					caching["lenet"].TotalTime.Mean() < lustre["lenet"].TotalTime.Mean(),
				"local %.1f < caching %.1f < lustre %.1f",
				local["lenet"].TotalTime.Mean(), caching["lenet"].TotalTime.Mean(),
				lustre["lenet"].TotalTime.Mean())
			o.check("ResNet-50 flat across setups (paper: compute-bound)",
				within(lustre["resnet50"].TotalTime.Mean(), local["resnet50"].TotalTime.Mean(), 0.10),
				"lustre %.1f vs local %.1f",
				lustre["resnet50"].TotalTime.Mean(), local["resnet50"].TotalTime.Mean())
			o.check("caching epoch 1 pays the copy cost (paper: 437 s vs 396 s)",
				caching["lenet"].EpochTime[0].Mean() >= 0.97*lustre["lenet"].EpochTime[0].Mean(),
				"caching %.1f vs lustre %.1f",
				caching["lenet"].EpochTime[0].Mean(), lustre["lenet"].EpochTime[0].Mean())
			o.check("caching epochs 2+ match local (paper: near-identical)",
				within(caching["lenet"].EpochTime[1].Mean(), local["lenet"].EpochTime[1].Mean(), 0.15),
				"caching %.1f vs local %.1f",
				caching["lenet"].EpochTime[1].Mean(), local["lenet"].EpochTime[1].Mean())
			if p.Runs >= 3 && p.UseInterference {
				o.check("lustre shows the highest variability (paper: shared PFS noise)",
					lustre["lenet"].TotalTime.StdDev() > local["lenet"].TotalTime.StdDev(),
					"lustre std %.2f vs local std %.2f",
					lustre["lenet"].TotalTime.StdDev(), local["lenet"].TotalTime.StdDev())
			}
			return o, nil
		},
	}
}

// fig3 reproduces the evaluation on the 100 GiB dataset with MONARCH
// added.
func fig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Figure 3 — training time per epoch with MONARCH, 100 GiB dataset",
		Paper: "MONARCH cuts LeNet total time 33% and AlexNet 15% vs vanilla-lustre; " +
			"MONARCH's first epoch beats vanilla-lustre and vanilla-caching " +
			"(full-record background fetch); epochs 2–3 match the local setups",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			mx, err := runMatrix(p, AllSetups(), paperModels, ds100)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			for _, m := range paperModels {
				aggs := []*Aggregate{
					mx[VanillaLustre][m], mx[VanillaLocal][m],
					mx[VanillaCaching][m], mx[Monarch][m],
				}
				o.Charts = append(o.Charts, trainingChart(
					fmt.Sprintf("Fig. 3 [%s] — training time (mean ± std over %d runs)", m, p.Runs),
					p.Epochs, aggs))
			}
			lustre, local, caching, mon := mx[VanillaLustre], mx[VanillaLocal], mx[VanillaCaching], mx[Monarch]

			red := reduction(lustre["lenet"].TotalTime.Mean(), mon["lenet"].TotalTime.Mean())
			o.check("MONARCH beats lustre for LeNet (paper: −33%)",
				red > 0.15 && red < 0.55, "measured −%.0f%%", 100*red)
			redAlex := reduction(lustre["alexnet"].TotalTime.Mean(), mon["alexnet"].TotalTime.Mean())
			o.check("MONARCH beats lustre for AlexNet (paper: −15%)",
				redAlex > 0.05 && redAlex < 0.45, "measured −%.0f%%", 100*redAlex)
			o.check("ResNet-50 flat with MONARCH (paper: compute-bound)",
				within(lustre["resnet50"].TotalTime.Mean(), mon["resnet50"].TotalTime.Mean(), 0.10),
				"lustre %.1f vs monarch %.1f",
				lustre["resnet50"].TotalTime.Mean(), mon["resnet50"].TotalTime.Mean())
			o.check("MONARCH epoch 1 ≤ vanilla-lustre epoch 1 (paper: full-record fetch)",
				mon["lenet"].EpochTime[0].Mean() <= 1.02*lustre["lenet"].EpochTime[0].Mean(),
				"monarch %.1f vs lustre %.1f",
				mon["lenet"].EpochTime[0].Mean(), lustre["lenet"].EpochTime[0].Mean())
			o.check("MONARCH epoch 1 ≤ vanilla-caching epoch 1",
				mon["lenet"].EpochTime[0].Mean() <= 1.02*caching["lenet"].EpochTime[0].Mean(),
				"monarch %.1f vs caching %.1f",
				mon["lenet"].EpochTime[0].Mean(), caching["lenet"].EpochTime[0].Mean())
			o.check("MONARCH epochs 2+ match vanilla-local (paper: served from SSD)",
				within(mon["lenet"].EpochTime[1].Mean(), local["lenet"].EpochTime[1].Mean(), 0.15),
				"monarch %.1f vs local %.1f",
				mon["lenet"].EpochTime[1].Mean(), local["lenet"].EpochTime[1].Mean())
			return o, nil
		},
	}
}

// fig4 reproduces the evaluation on the 200 GiB dataset, which does not
// fit the local tier: only vanilla-lustre and MONARCH are viable.
func fig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Figure 4 — training time per epoch, 200 GiB dataset (partial caching)",
		Paper: "MONARCH cuts LeNet total time 24% (2842→2155 s) and AlexNet 12% " +
			"(3567→3138 s); ResNet-50 unchanged; vanilla-caching inapplicable",
		Run: func(p Params) (*Outcome, error) {
			_, ds200 := p.Datasets()
			mx, err := runMatrix(p, []Setup{VanillaLustre, Monarch}, paperModels, ds200)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			for _, m := range paperModels {
				aggs := []*Aggregate{mx[VanillaLustre][m], mx[Monarch][m]}
				o.Charts = append(o.Charts, trainingChart(
					fmt.Sprintf("Fig. 4 [%s] — training time (mean ± std over %d runs)", m, p.Runs),
					p.Epochs, aggs))
			}
			lustre, mon := mx[VanillaLustre], mx[Monarch]
			red := reduction(lustre["lenet"].TotalTime.Mean(), mon["lenet"].TotalTime.Mean())
			o.check("MONARCH beats lustre for LeNet on the oversized dataset (paper: −24%)",
				red > 0.10 && red < 0.45, "measured −%.0f%%", 100*red)
			redAlex := reduction(lustre["alexnet"].TotalTime.Mean(), mon["alexnet"].TotalTime.Mean())
			o.check("MONARCH beats lustre for AlexNet (paper: −12%)",
				redAlex > 0.03 && redAlex < 0.35, "measured −%.0f%%", 100*redAlex)
			o.check("ResNet-50 flat (paper: compute-bound)",
				within(lustre["resnet50"].TotalTime.Mean(), mon["resnet50"].TotalTime.Mean(), 0.10),
				"lustre %.1f vs monarch %.1f",
				lustre["resnet50"].TotalTime.Mean(), mon["resnet50"].TotalTime.Mean())
			o.check("MONARCH later epochs beat its first (paper: partial tier-0 coverage)",
				mon["lenet"].EpochTime[1].Mean() < mon["lenet"].EpochTime[0].Mean(),
				"epoch2 %.1f vs epoch1 %.1f",
				mon["lenet"].EpochTime[1].Mean(), mon["lenet"].EpochTime[0].Mean())

			// The paper notes vanilla-caching cannot run this dataset.
			if _, err := RunMany(VanillaCaching, "lenet", ds200, p); err == nil {
				o.check("vanilla-caching rejected on oversized dataset", false, "unexpectedly ran")
			} else {
				o.check("vanilla-caching rejected on oversized dataset", true, "%v", err)
			}
			return o, nil
		},
	}
}

// modelList formats the models column for tables.
func modelTitle(name string) string {
	m, err := models.ByName(name)
	if err != nil {
		return name
	}
	return m.Name
}
