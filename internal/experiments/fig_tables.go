package experiments

import (
	"fmt"

	"monarch/internal/dataset"
	"monarch/internal/report"
)

// tabResourcesMotivation reproduces §II-A's resource-usage text as a
// table: CPU/GPU/memory per vanilla setup and model on ds100.
func tabResourcesMotivation() Experiment {
	return Experiment{
		ID:    "resources-motivation",
		Title: "§II-A — resource usage under the vanilla setups, 100 GiB dataset",
		Paper: "LeNet: 30%/22% CPU/GPU on lustre → 57%/39% on local, 37%/28% with caching; " +
			"AlexNet: 31%/58% → 42%/72%, 34%/63% with caching; " +
			"ResNet-50 stays ~10%/90%; memory flat at ~10 GiB",
		Run: func(p Params) (*Outcome, error) {
			ds100, _ := p.Datasets()
			setups := []Setup{VanillaLustre, VanillaLocal, VanillaCaching}
			mx, err := runMatrix(p, setups, paperModels, ds100)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			o.Tables = append(o.Tables, resourceTable(
				"§II-A resource usage (mean over runs)", setups, mx))
			o.Checks = append(o.Checks, resourceChecks(mx, VanillaLocal)...)
			return o, nil
		},
	}
}

// tabResourcesEval reproduces §IV-B: resource usage with MONARCH on
// both datasets.
func tabResourcesEval() Experiment {
	return Experiment{
		ID:    "resources-eval",
		Title: "§IV-B — resource usage with MONARCH",
		Paper: "100 GiB: MONARCH shows the second-highest CPU/GPU use after vanilla-local " +
			"(LeNet 44%/31%, AlexNet 37%/68%, ResNet 11%/91%); 200 GiB: MONARCH lifts " +
			"LeNet from 36%/30% to 46%/38% and AlexNet from 31%/63% to 33%/69%",
		Run: func(p Params) (*Outcome, error) {
			ds100, ds200 := p.Datasets()
			o := &Outcome{}

			mx100, err := runMatrix(p, AllSetups(), paperModels, ds100)
			if err != nil {
				return nil, err
			}
			o.Tables = append(o.Tables, resourceTable(
				"§IV-B resource usage, 100 GiB", AllSetups(), mx100))

			mx200, err := runMatrix(p, []Setup{VanillaLustre, Monarch}, paperModels, ds200)
			if err != nil {
				return nil, err
			}
			o.Tables = append(o.Tables, resourceTable(
				"§IV-B resource usage, 200 GiB", []Setup{VanillaLustre, Monarch}, mx200))

			o.Checks = append(o.Checks, resourceChecks(mx100, Monarch)...)
			for _, m := range []string{"lenet", "alexnet"} {
				lu, mo := mx200[VanillaLustre][m], mx200[Monarch][m]
				o.check(fmt.Sprintf("200 GiB: MONARCH raises GPU utilisation for %s", m),
					mo.GPUUtil.Mean() > lu.GPUUtil.Mean(),
					"monarch %.0f%% vs lustre %.0f%%", 100*mo.GPUUtil.Mean(), 100*lu.GPUUtil.Mean())
			}
			// Memory flat ~10 GiB across everything (paper §II-A/§IV-B).
			for _, m := range paperModels {
				mem := mx100[Monarch][m].Memory.Mean()
				o.check(fmt.Sprintf("memory ~10 GiB for %s", m),
					mem > 8e9 && mem < 13e9, "estimate %s", GiB(mem))
			}
			return o, nil
		},
	}
}

func resourceTable(title string, setups []Setup, mx matrix) *report.Table {
	t := report.NewTable(title, "model", "setup", "cpu", "gpu", "memory")
	for _, m := range paperModels {
		for _, s := range setups {
			a := mx[s][m]
			if a == nil {
				continue
			}
			t.Add(modelTitle(m), string(s),
				report.Percent(a.CPUUtil.Mean()),
				report.Percent(a.GPUUtil.Mean()),
				GiB(a.Memory.Mean()))
		}
	}
	return t
}

// resourceChecks verifies the paper's qualitative claims: faster
// storage lifts CPU and GPU utilisation for the I/O-bound models and
// leaves ResNet-50's profile alone.
func resourceChecks(mx matrix, improved Setup) []Check {
	o := &Outcome{}
	for _, m := range []string{"lenet", "alexnet"} {
		lu, im := mx[VanillaLustre][m], mx[improved][m]
		o.check(fmt.Sprintf("%s lifts CPU utilisation for %s", improved, m),
			im.CPUUtil.Mean() > lu.CPUUtil.Mean(),
			"%.0f%% vs %.0f%%", 100*im.CPUUtil.Mean(), 100*lu.CPUUtil.Mean())
		o.check(fmt.Sprintf("%s lifts GPU utilisation for %s", improved, m),
			im.GPUUtil.Mean() > lu.GPUUtil.Mean(),
			"%.0f%% vs %.0f%%", 100*im.GPUUtil.Mean(), 100*lu.GPUUtil.Mean())
	}
	lu, im := mx[VanillaLustre]["resnet50"], mx[improved]["resnet50"]
	o.check("resnet50 GPU utilisation stays high and flat",
		lu.GPUUtil.Mean() > 0.75 && within(lu.GPUUtil.Mean(), im.GPUUtil.Mean(), 0.08),
		"lustre %.0f%% vs %s %.0f%%", 100*lu.GPUUtil.Mean(), improved, 100*im.GPUUtil.Mean())
	return o.Checks
}

// tabIOOps reproduces §IV-A's I/O-operation analysis on the 200 GiB
// dataset.
func tabIOOps() Experiment {
	return Experiment{
		ID:    "io-ops",
		Title: "§IV-A — I/O operations against the shared PFS, 200 GiB dataset",
		Paper: "vanilla-lustre issues 798,340 ops per epoch; with MONARCH, epochs 2–3 " +
			"still issue ~360,000 (the uncachable remainder); global reduction averages " +
			"55% (abstract headline: up to 45% fewer ops)",
		Run: func(p Params) (*Outcome, error) {
			_, ds200 := p.Datasets()
			man, err := dataset.Plan(ds200)
			if err != nil {
				return nil, err
			}
			lustre, err := run(VanillaLustre, "lenet", ds200, p)
			if err != nil {
				return nil, err
			}
			mon, err := run(Monarch, "lenet", ds200, p)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			t := report.NewTable("PFS data operations per epoch (mean over runs)",
				"epoch", "vanilla-lustre", "monarch", "remaining")
			var totL, totM float64
			for e := 0; e < p.Epochs; e++ {
				l, m := lustre.PFSOps[e].Mean(), mon.PFSOps[e].Mean()
				totL += l
				totM += m
				t.Add(fmt.Sprintf("%d", e+1), report.Count(int64(l)), report.Count(int64(m)),
					report.Percent(m/l))
			}
			t.Add("total", report.Count(int64(totL)), report.Count(int64(totM)),
				report.Percent(totM/totL))
			o.Tables = append(o.Tables, t)

			// Geometry: ops per vanilla epoch ≈ dataset bytes / read size.
			expectOps := float64(man.TotalBytes()) / float64(p.Pipeline.ReadSize)
			o.check("vanilla ops/epoch match the 256 KiB pread geometry (paper: 798,340)",
				within(lustre.PFSOps[0].Mean(), expectOps, 0.10),
				"measured %.0f vs geometric %.0f", lustre.PFSOps[0].Mean(), expectOps)

			// Steady state: the remaining fraction ≈ the uncached share.
			covered := quotaCovered(man, p.SSDQuota())
			remaining := mon.PFSOps[p.Epochs-1].Mean() / lustre.PFSOps[p.Epochs-1].Mean()
			o.check("steady-state remainder matches quota geometry (paper: ~360k of 798k)",
				within(remaining, 1-covered, 0.15),
				"remaining %.0f%% vs uncached share %.0f%%", 100*remaining, 100*(1-covered))

			globalRed := reduction(totL, totM)
			o.check("global op reduction (paper: avg 55%)",
				globalRed > 0.35 && globalRed < 0.70, "measured −%.0f%%", 100*globalRed)
			return o, nil
		},
	}
}

// tabMetadataInit reproduces §IV-A's metadata-container initialisation
// timings.
func tabMetadataInit() Experiment {
	return Experiment{
		ID:    "metadata-init",
		Title: "§IV-A — metadata container initialisation",
		Paper: "namespace build takes ~13 s for the 100 GiB dataset and ~52 s for the " +
			"200 GiB dataset (4× the files)",
		Run: func(p Params) (*Outcome, error) {
			ds100, ds200 := p.Datasets()
			a100, err := run(Monarch, "lenet", ds100, p)
			if err != nil {
				return nil, err
			}
			a200, err := run(Monarch, "lenet", ds200, p)
			if err != nil {
				return nil, err
			}
			o := &Outcome{}
			t := report.NewTable("metadata init (mean ± std)",
				"dataset", "shards", "init time", "scaled to paper size")
			t.Add(ds100.Name, report.Count(int64(ds100.NumShards)),
				fmt.Sprintf("%.2f ± %.2f s", a100.InitTime.Mean(), a100.InitTime.StdDev()),
				report.Seconds(a100.InitTime.Mean()/p.Scale))
			t.Add(ds200.Name, report.Count(int64(ds200.NumShards)),
				fmt.Sprintf("%.2f ± %.2f s", a200.InitTime.Mean(), a200.InitTime.StdDev()),
				report.Seconds(a200.InitTime.Mean()/p.Scale))
			o.Tables = append(o.Tables, t)

			ratio := a200.InitTime.Mean() / a100.InitTime.Mean()
			shardRatio := float64(ds200.NumShards) / float64(ds100.NumShards)
			o.check("init time scales with file count (paper: 13 s → 52 s, 4×)",
				within(ratio, shardRatio, 0.25), "ratio %.1f vs shard ratio %.1f", ratio, shardRatio)
			full100 := a100.InitTime.Mean() / p.Scale
			o.check("100 GiB init lands near the paper's 13 s at full scale",
				full100 > 6 && full100 < 26, "scaled %.1f s", full100)
			return o, nil
		},
	}
}
