package experiments

import (
	"errors"
	"strings"
	"testing"

	"monarch/internal/dataset"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
)

func setupManifest(t *testing.T) (*dataset.Manifest, Params) {
	t.Helper()
	p := QuickParams()
	ds100, _ := p.Datasets()
	man, err := dataset.Plan(ds100)
	if err != nil {
		t.Fatal(err)
	}
	return man, p
}

func TestBuildRigAllSetups(t *testing.T) {
	man, p := setupManifest(t)
	for _, setup := range AllSetups() {
		env := sim.NewEnv(1)
		r, err := buildRig(env, setup, man, p)
		if err != nil {
			env.Close()
			t.Fatalf("%s: %v", setup, err)
		}
		if r.source == nil {
			t.Errorf("%s: nil source", setup)
		}
		switch setup {
		case VanillaLocal:
			if r.pfs != nil {
				t.Errorf("%s should not track a PFS", setup)
			}
		default:
			if r.pfs == nil {
				t.Errorf("%s must track the PFS", setup)
			}
		}
		if (setup == Monarch) != (r.monarch != nil) {
			t.Errorf("%s: monarch presence wrong", setup)
		}
		env.Close()
	}
}

func TestBuildRigUnknownSetup(t *testing.T) {
	man, p := setupManifest(t)
	env := sim.NewEnv(1)
	defer env.Close()
	if _, err := buildRig(env, Setup("bogus"), man, p); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildRigUnknownEvictionPolicy(t *testing.T) {
	man, p := setupManifest(t)
	p.Eviction = "arc"
	env := sim.NewEnv(1)
	defer env.Close()
	if _, err := buildRig(env, Monarch, man, p); err == nil ||
		!strings.Contains(err.Error(), "eviction") {
		t.Fatalf("got %v", err)
	}
}

func TestBuildRigLocalSetupsRejectOversizedDataset(t *testing.T) {
	_, p := setupManifest(t)
	_, ds200 := p.Datasets()
	man, err := dataset.Plan(ds200)
	if err != nil {
		t.Fatal(err)
	}
	for _, setup := range []Setup{VanillaLocal, VanillaCaching} {
		env := sim.NewEnv(1)
		_, err := buildRig(env, setup, man, p)
		env.Close()
		if err == nil {
			t.Errorf("%s accepted a dataset bigger than the local tier", setup)
		}
	}
	// MONARCH is precisely the setup that must accept it.
	env := sim.NewEnv(1)
	defer env.Close()
	if _, err := buildRig(env, Monarch, man, p); err != nil {
		t.Fatalf("monarch rejected oversized dataset: %v", err)
	}
}

func TestBuildRigMultiTier(t *testing.T) {
	man, p := setupManifest(t)
	p.ExtraTierBytes = 32 << 30
	env := sim.NewEnv(1)
	defer env.Close()
	r, err := buildRig(env, Monarch, man, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.monarch.Levels() != 3 {
		t.Fatalf("levels = %d, want 3", r.monarch.Levels())
	}
}

func TestCachingSourceWriteThroughAndHit(t *testing.T) {
	man, p := setupManifest(t)
	env := sim.NewEnv(1)
	defer env.Close()
	p.Lustre.LatencySigma = 0
	p.UseInterference = false
	lustre := simstore.NewStore(simstore.NewDevice(env, p.Lustre), "lustre", 0)
	for i := range man.Shards {
		lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
	}
	lustre.SetReadOnly(true)
	pfs := storage.NewCounting(lustre)
	ssdDev := simstore.NewDevice(env, p.SSD)
	src := newCachingSource(env, pfs, ssdDev, man)

	shard := man.Shards[0]
	env.Go("reader", func(proc *sim.Proc) {
		ctx := proc.Context()
		buf := make([]byte, 256<<10)
		// First pass: sequential full read → PFS + write-through.
		off := int64(0)
		for off < shard.Size {
			n, err := src.ReadAt(ctx, shard.Name, buf, off)
			if err != nil || n == 0 {
				t.Errorf("first pass at %d: n=%d err=%v", off, n, err)
				return
			}
			off += int64(n)
		}
		if src.cachedBytes() != shard.Size {
			t.Errorf("cached = %d, want %d", src.cachedBytes(), shard.Size)
		}
		pfsBefore := pfs.Counts().DataOps()
		// Second pass: must hit the cache only.
		off = 0
		for off < shard.Size {
			n, err := src.ReadAt(ctx, shard.Name, buf, off)
			if err != nil || n == 0 {
				t.Errorf("second pass: n=%d err=%v", n, err)
				return
			}
			off += int64(n)
		}
		if got := pfs.Counts().DataOps(); got != pfsBefore {
			t.Errorf("cache hit still touched PFS: %d ops", got-pfsBefore)
		}
		// Unknown shard.
		if _, err := src.ReadAt(ctx, "ghost", buf, 0); err == nil {
			t.Error("unknown shard accepted")
		}
		// Reads past EOF on a cached shard.
		if n, err := src.ReadAt(ctx, shard.Name, buf, shard.Size+10); n != 0 || err != nil {
			t.Errorf("past-EOF: n=%d err=%v", n, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Write-through must have charged the SSD for the whole shard once.
	_, wOps, _, _, bw := ssdDev.Stats()
	if bw != shard.Size {
		t.Fatalf("ssd wrote %d bytes, want %d (ops %d)", bw, shard.Size, wOps)
	}
}

func TestRunOneRejectsErrors(t *testing.T) {
	man, p := setupManifest(t)
	if _, err := RunOne(Setup("bogus"), "lenet", man, p, 1); err == nil {
		t.Fatal("bogus setup accepted")
	}
	if _, err := RunOne(VanillaLocal, "vgg", man, p, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAllSetupsOrder(t *testing.T) {
	s := AllSetups()
	if len(s) != 4 || s[0] != VanillaLustre || s[3] != Monarch {
		t.Fatalf("setups = %v", s)
	}
}

func TestRunResultTotalPFSOps(t *testing.T) {
	r := RunResult{PFSOpsPerEpoch: []int64{10, 20, 30}}
	if r.TotalPFSOps() != 60 {
		t.Fatalf("total = %d", r.TotalPFSOps())
	}
}

func TestGiBFormatter(t *testing.T) {
	if GiB(float64(3<<30)) != "3.0 GiB" {
		t.Fatal(GiB(float64(3 << 30)))
	}
}

// Ensure errors from simulated runs surface rather than hang: a model
// validation failure must come back as an error.
func TestRunManyPropagatesModelError(t *testing.T) {
	p := QuickParams()
	ds100, _ := p.Datasets()
	if _, err := RunMany(VanillaLocal, "nope", ds100, p); err == nil {
		t.Fatal("expected error")
	}
	var wantErr error
	_ = wantErr
	_ = errors.Is
}
