package experiments

import (
	"testing"

	"monarch/internal/dataset"
)

// TestSmokeShapes prints the headline behaviours at tiny scale; used
// during calibration and kept as a fast end-to-end sanity check.
func TestSmokeShapes(t *testing.T) {
	p := QuickParams()
	p.Runs = 1
	ds100, ds200 := p.Datasets()

	for _, model := range []string{"lenet"} {
		for _, setup := range []Setup{VanillaLustre, VanillaLocal, VanillaCaching, Monarch} {
			agg, err := RunMany(setup, model, ds100, p)
			if err != nil {
				t.Fatalf("%s/%s: %v", setup, model, err)
			}
			t.Logf("ds100 %s %-15s epochs=[%.1f %.1f %.1f]s total=%.1fs cpu=%.0f%% gpu=%.0f%% pfsOps=%v init=%.2fs",
				model, agg.Setup,
				agg.EpochTime[0].Mean(), agg.EpochTime[1].Mean(), agg.EpochTime[2].Mean(),
				agg.TotalTime.Mean(), 100*agg.CPUUtil.Mean(), 100*agg.GPUUtil.Mean(),
				int64(agg.PFSOpTotal.Mean()), agg.InitTime.Mean())
		}
	}
	for _, setup := range []Setup{VanillaLustre, Monarch} {
		agg, err := RunMany(setup, "lenet", ds200, p)
		if err != nil {
			t.Fatalf("ds200 %s: %v", setup, err)
		}
		t.Logf("ds200 lenet %-15s epochs=[%.1f %.1f %.1f]s total=%.1fs pfsOpsPerEpoch=[%v %v %v]",
			agg.Setup,
			agg.EpochTime[0].Mean(), agg.EpochTime[1].Mean(), agg.EpochTime[2].Mean(),
			agg.TotalTime.Mean(),
			int64(agg.PFSOps[0].Mean()), int64(agg.PFSOps[1].Mean()), int64(agg.PFSOps[2].Mean()))
	}
	_ = dataset.Spec{}
}
