package experiments

import (
	"testing"

	"monarch/internal/dataset"
)

func distManifest(t *testing.T, p Params) *dataset.Manifest {
	t.Helper()
	ds100, _ := p.Datasets()
	man, err := dataset.Plan(ds100)
	if err != nil {
		t.Fatal(err)
	}
	return man
}

func TestShardingModeString(t *testing.T) {
	if ShardNone.String() != "replicated" || ShardSticky.String() != "sticky" ||
		ShardReshuffled.String() != "reshuffled" || ShardingMode(9).String() != "unknown" {
		t.Fatal("ShardingMode.String broken")
	}
}

func TestSelectorPartitionsCoverEverything(t *testing.T) {
	const nodes, total = 4, 25
	for _, mode := range []ShardingMode{ShardSticky, ShardReshuffled} {
		for epoch := 0; epoch < 3; epoch++ {
			seen := map[int]int{}
			for node := 0; node < nodes; node++ {
				sel := selector(mode, node, nodes, 7)
				for _, s := range sel(epoch, total) {
					seen[s]++
				}
			}
			if len(seen) != total {
				t.Fatalf("%v epoch %d: %d shards covered, want %d", mode, epoch, len(seen), total)
			}
			for s, n := range seen {
				if n != 1 {
					t.Fatalf("%v epoch %d: shard %d assigned %d times", mode, epoch, s, n)
				}
			}
		}
	}
}

func TestSelectorStickyStableAcrossEpochs(t *testing.T) {
	sel := selector(ShardSticky, 1, 3, 7)
	a, b := sel(0, 20), sel(2, 20)
	if len(a) != len(b) {
		t.Fatal("sticky assignment size changed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sticky assignment changed across epochs")
		}
	}
}

func TestSelectorReshuffledChangesAcrossEpochs(t *testing.T) {
	sel := selector(ShardReshuffled, 0, 4, 7)
	a, b := sel(0, 40), sel(1, 40)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("reshuffled assignment identical across epochs")
	}
}

func TestSelectorReplicatedIsNil(t *testing.T) {
	if selector(ShardNone, 0, 4, 7) != nil {
		t.Fatal("replicated mode should read every shard (nil selector)")
	}
}

func TestRunDistributedSingleNodeMatchesShape(t *testing.T) {
	p := QuickParams()
	p.Runs = 1
	man := distManifest(t, p)
	d, err := RunDistributed(man, p, 1, ShardNone, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes != 1 || len(d.NodeTimes) != 1 || d.JobTime <= 0 {
		t.Fatalf("result: %+v", d)
	}
	if d.Placements == 0 {
		t.Fatal("single monarch node placed nothing")
	}
	if d.PFSOps == 0 || d.PFSBytes == 0 {
		t.Fatal("no PFS traffic recorded")
	}
}

func TestRunDistributedBarrierKeepsNodesTogether(t *testing.T) {
	p := QuickParams()
	man := distManifest(t, p)
	d, err := RunDistributed(man, p, 3, ShardSticky, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With the per-epoch barrier, node totals differ by at most one
	// epoch's straggler gap — they must all be within 25% of the max.
	for i, nt := range d.NodeTimes {
		if float64(nt) < 0.75*float64(d.JobTime) {
			t.Fatalf("node %d finished way early: %v vs job %v", i, nt, d.JobTime)
		}
	}
}

func TestRunDistributedRejectsBadNodeCount(t *testing.T) {
	p := QuickParams()
	man := distManifest(t, p)
	if _, err := RunDistributed(man, p, 0, ShardNone, false, 1); err == nil {
		t.Fatal("expected error for nodes=0")
	}
}

func TestRunDistributedDeterministic(t *testing.T) {
	p := QuickParams()
	man := distManifest(t, p)
	a, err := RunDistributed(man, p, 2, ShardSticky, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDistributed(man, p, 2, ShardSticky, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.JobTime != b.JobTime || a.PFSOps != b.PFSOps {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", a.JobTime, a.PFSOps, b.JobTime, b.PFSOps)
	}
}
