package models

import (
	"testing"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestComputeOrdering(t *testing.T) {
	// The evaluation relies on LeNet < AlexNet < ResNet-50 compute
	// demand: that ordering decides which models are I/O-bound.
	if !(LeNet().StepTime < AlexNet().StepTime && AlexNet().StepTime < ResNet50().StepTime) {
		t.Fatal("step-time ordering violated")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lenet", "alexnet", "resnet50"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, m, err)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestAllOrderMatchesPaper(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "lenet" || all[1].Name != "alexnet" || all[2].Name != "resnet50" {
		t.Fatalf("All() = %v", all)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Model{
		{},
		{Name: "x", StepTime: 0, GPUBusyFraction: 1},
		{Name: "x", StepTime: time.Second, GPUBusyFraction: 0},
		{Name: "x", StepTime: time.Second, GPUBusyFraction: 1.5},
		{Name: "x", StepTime: time.Second, GPUBusyFraction: 1, PreprocessPerImage: -time.Second},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("profile %d should be invalid", i)
		}
	}
}
