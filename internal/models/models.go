// Package models holds the cost profiles of the paper's three
// evaluation networks. The reproduction does not train networks — it
// reproduces their *resource footprints*: LeNet and AlexNet are
// I/O-bound on the paper's testbed (small/medium GPU step times, so the
// storage path gates the epoch), ResNet-50 is compute-bound (the GPUs
// gate the epoch regardless of storage).
//
// Step times are per global batch across the node's 4 GPUs; preprocess
// cost is CPU-core time per image. Values are calibrated against the
// paper's Figure 1 as documented in DESIGN.md §5.
package models

import (
	"fmt"
	"time"
)

// Model is a cost profile.
type Model struct {
	// Name is the paper's model name.
	Name string
	// StepTime is the synchronous data-parallel step duration for one
	// global batch using all GPUs.
	StepTime time.Duration
	// StepSigma is the lognormal spread of step times.
	StepSigma float64
	// GPUBusyFraction is the share of the step during which the GPUs
	// are actually occupied (the rest is host-side sync overhead).
	GPUBusyFraction float64
	// PreprocessPerImage is CPU-core time to decode/augment one image.
	PreprocessPerImage time.Duration
}

// Validate reports profile errors.
func (m Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("models: empty name")
	case m.StepTime <= 0:
		return fmt.Errorf("models: %s: non-positive step time", m.Name)
	case m.GPUBusyFraction <= 0 || m.GPUBusyFraction > 1:
		return fmt.Errorf("models: %s: GPU busy fraction %v out of (0,1]", m.Name, m.GPUBusyFraction)
	case m.PreprocessPerImage < 0:
		return fmt.Errorf("models: %s: negative preprocess cost", m.Name)
	}
	return nil
}

// LeNet is the paper's most I/O-bound model: a tiny network whose step
// barely occupies the GPUs.
func LeNet() Model {
	return Model{
		Name:               "lenet",
		StepTime:           24 * time.Millisecond,
		StepSigma:          0.05,
		GPUBusyFraction:    1.0,
		PreprocessPerImage: 4400 * time.Microsecond,
	}
}

// AlexNet is moderately I/O-bound: heavier steps than LeNet but still
// gated by Lustre throughput on the paper's testbed.
func AlexNet() Model {
	return Model{
		Name:               "alexnet",
		StepTime:           90 * time.Millisecond,
		StepSigma:          0.05,
		GPUBusyFraction:    0.8,
		PreprocessPerImage: 4400 * time.Microsecond,
	}
}

// ResNet50 is compute-bound: its step time dominates any storage
// configuration in the evaluation, which is why the paper's Figures 1,
// 3 and 4 show flat ResNet bars.
func ResNet50() Model {
	return Model{
		Name:               "resnet50",
		StepTime:           330 * time.Millisecond,
		StepSigma:          0.04,
		GPUBusyFraction:    0.9,
		PreprocessPerImage: 4400 * time.Microsecond,
	}
}

// All returns the evaluation's model set in the paper's order.
func All() []Model { return []Model{LeNet(), AlexNet(), ResNet50()} }

// ByName resolves a model by its paper name.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown model %q", name)
}
