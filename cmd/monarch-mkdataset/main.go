// Command monarch-mkdataset materialises a synthetic TFRecord dataset
// on disk: deterministic image-like records packed into shards, laid
// out exactly as the simulation's manifests describe. Useful for
// exercising the real-I/O middleware (quickstart example, integration
// tests) and for inspecting the on-disk format.
//
// Usage:
//
//	monarch-mkdataset -dir /tmp/ds -images 2000 -bytes 64MiB -shards 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"monarch/internal/dataset"
	"monarch/internal/storage"
)

func main() {
	var (
		dir     = flag.String("dir", "", "output directory (required; created if missing)")
		name    = flag.String("name", "synthetic", "dataset name prefix")
		images  = flag.Int("images", 1000, "number of records")
		size    = flag.String("bytes", "16MiB", "total size target (e.g. 512KiB, 64MiB, 2GiB)")
		shards  = flag.Int("shards", 4, "number of shard files")
		sigma   = flag.Float64("sigma", 0.35, "lognormal spread of record sizes")
		seed    = flag.Uint64("seed", 1, "layout seed")
		format  = flag.String("format", "tfrecord", "shard container: tfrecord | recordio")
		example = flag.Bool("tfexample", false, "emit real tf.Example protobuf payloads")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}
	var f dataset.Format
	switch *format {
	case "tfrecord":
		f = dataset.TFRecord
	case "recordio":
		f = dataset.RecordIO
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	total, err := parseBytes(*size)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	backend, err := storage.NewOSFS("out", *dir, 0)
	if err != nil {
		fatal(err)
	}
	spec := dataset.Spec{
		Name:              *name,
		Format:            f,
		TFExamplePayloads: *example,
		NumImages:         *images,
		TotalBytes:        total,
		NumShards:         *shards,
		SizeSigma:         *sigma,
		Seed:              *seed,
	}
	man, err := dataset.Materialize(context.Background(), backend, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d shards, %d records, %d bytes to %s\n",
		len(man.Shards), man.NumRecords(), man.TotalBytes(), *dir)
	fmt.Printf("first shard: %s (%d bytes, %d records)\n",
		man.Shards[0].Name, man.Shards[0].Size, len(man.Shards[0].Records))
}

// parseBytes understands "123", "64KiB", "2MiB", "1GiB".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "KIB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KIB")
	case strings.HasSuffix(upper, "MIB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MIB")
	case strings.HasSuffix(upper, "GIB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GIB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monarch-mkdataset:", err)
	os.Exit(1)
}
