// Command monarch-inspect examines TFRecord or RecordIO shards and
// datasets produced by monarch-mkdataset (or the frameworks
// themselves).
//
// Usage:
//
//	monarch-inspect tfrecord <file>   # index a TFRecord shard, verify CRCs
//	monarch-inspect recordio <file>   # index an MXNet RecordIO shard
//	monarch-inspect example <file>    # decode the first record's tf.Example
//	monarch-inspect dataset <dir>     # summarise a shard directory
//	monarch-inspect metrics <path|url> # summarise a metrics snapshot
//	monarch-inspect trace [-json] <file>... # per-epoch analytics of an access trace
//	monarch-inspect top [-once] [-interval 2s] <url> # live cluster view
//
// The metrics subcommand accepts either a JSON snapshot file (as
// embedded in BENCH_obs.json or fetched from /metrics.json) or the base
// URL of a running instance's metrics endpoint (Config.MetricsAddr).
//
// The trace subcommand reads an access trace captured with
// monarch-bench -capture (JSONL or binary) and derives per-epoch PFS
// operation counts and savings against a PFS-only baseline, per-file
// access heatmaps, the tier-transition timeline and
// time-to-first-local-hit; -json emits the full analysis as JSON.
// Given SEVERAL trace files — one per node of a peer-cache cluster —
// it instead stitches cross-node reads: each peer-served read's client
// half (in the reader's trace) is joined to its serve half (in the
// owner's trace) by the request ID both carry.
//
// The top subcommand polls a node's /cluster.json (served next to
// /metrics when the node runs a fleet aggregator) and renders a live
// terminal view of the cluster: per-node hit ratios, tier occupancy,
// breaker and gossip state, per-job quota usage and eviction churn.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"monarch/internal/obs"
	"monarch/internal/recordio"
	"monarch/internal/stats"
	"monarch/internal/storage"
	"monarch/internal/tfexample"
	"monarch/internal/tfrecord"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

func main() {
	if len(os.Args) < 3 {
		fatal(fmt.Errorf("usage: monarch-inspect {tfrecord <file> | recordio <file> | dataset <dir> | metrics <path|url> | trace [-json] <file>... | top [-once] [-interval 2s] <url>}"))
	}
	var err error
	switch os.Args[1] {
	case "tfrecord":
		err = inspectShard(os.Args[2], false)
	case "recordio":
		err = inspectShard(os.Args[2], true)
	case "example":
		err = inspectExample(os.Args[2])
	case "dataset":
		err = inspectDataset(os.Args[2])
	case "metrics":
		err = inspectMetrics(os.Args[2])
	case "trace":
		err = inspectTrace(os.Args[2:])
	case "top":
		err = inspectTop(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

// inspectTrace analyzes access traces. One file: per-epoch analytics,
// human tables by default, the full analysis as JSON with -json.
// Several files — one per node of a peer-cache cluster — switch to
// cross-node correlation: peer reads are stitched to the serve events
// the owning nodes recorded, joined by the shared request ID.
func inspectTrace(args []string) error {
	asJSON := false
	var paths []string
	for _, a := range args {
		switch {
		case a == "-json" || a == "--json":
			asJSON = true
		case strings.HasPrefix(a, "-"):
			return fmt.Errorf("trace: unknown flag %q", a)
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("usage: monarch-inspect trace [-json] <file>...")
	}
	if len(paths) == 1 {
		t, err := trace.ReadFile(paths[0])
		if err != nil {
			return err
		}
		a := analyze.Analyze(t, analyze.Options{})
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(a)
		}
		a.Render(os.Stdout, analyze.Options{})
		return nil
	}

	traces := make(map[string]*trace.Trace, len(paths))
	for _, p := range paths {
		t, err := trace.ReadFile(p)
		if err != nil {
			return err
		}
		node := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if _, dup := traces[node]; dup {
			node = p // fall back to the full path on basename collisions
		}
		traces[node] = t
	}
	c := analyze.Correlate(traces)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(c)
	}
	renderCorrelation(os.Stdout, traces, c)
	return nil
}

// renderCorrelation prints the stitched cross-node view.
func renderCorrelation(w io.Writer, traces map[string]*trace.Trace, c *analyze.Correlation) {
	nodes := make([]string, 0, len(traces))
	for n := range traces {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(w, "correlating %d traces:\n", len(nodes))
	for _, n := range nodes {
		t := traces[n]
		var serves int
		for _, ev := range t.Events {
			if ev.Kind == trace.KindServe {
				serves++
			}
		}
		fmt.Fprintf(w, "  %-20s %6d event(s), %d serve(s)\n", n, len(t.Events), serves)
	}
	fmt.Fprintf(w, "\n%d stitched cross-node read(s), %d unmatched read(s), %d unmatched serve(s)\n",
		len(c.Pairs), c.UnmatchedReads, c.UnmatchedServes)
	const show = 10
	for i, p := range c.Pairs {
		if i == show {
			fmt.Fprintf(w, "  … %d more pair(s)\n", len(c.Pairs)-show)
			break
		}
		for _, s := range p.Serves {
			fmt.Fprintf(w, "  req=%016x %-28s %s(%s, ≤%gs) ⇐ %s(≤%gs)\n",
				p.Req, p.Client.File, p.Client.Node, p.Client.Class, p.Client.Lat,
				s.Node, s.Lat)
		}
	}
}

func inspectShard(path string, mxnet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sizes []float64
	var framing int64
	if mxnet {
		idx, err := recordio.BuildIndex(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, e := range idx {
			sizes = append(sizes, float64(e.Length))
			framing += recordio.RecordSize(e.Length) - e.Length
		}
	} else {
		idx, err := tfrecord.BuildIndex(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, e := range idx {
			sizes = append(sizes, float64(e.Length))
			framing += tfrecord.Overhead
		}
	}
	s := stats.Summarize(sizes)
	fmt.Printf("%s: %d records, %d bytes (%.1f%% framing overhead)\n",
		path, s.N, len(data), 100*float64(framing)/float64(len(data)))
	fmt.Printf("record sizes: mean %.0f ± %.0f, min %.0f, p50 %.0f, p99 %.0f, max %.0f\n",
		s.Mean, s.StdDev, s.Min, s.P50, s.P99, s.Max)
	return nil
}

// inspectExample decodes the first record of a TFRecord shard as a
// tf.Example and prints its features.
func inspectExample(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	payload, err := tfrecord.NewReader(f).Next()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	ex, err := tfexample.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("%s: first record is not a tf.Example: %w", path, err)
	}
	names := make([]string, 0, len(ex))
	for name := range ex {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%s: first record is a tf.Example with %d feature(s)\n", path, len(ex))
	for _, name := range names {
		feat := ex[name]
		switch {
		case feat.Bytes != nil:
			total := 0
			for _, b := range feat.Bytes {
				total += len(b)
			}
			fmt.Printf("  %-24s bytes_list: %d value(s), %d bytes\n", name, len(feat.Bytes), total)
		case feat.Ints != nil:
			fmt.Printf("  %-24s int64_list: %v\n", name, feat.Ints)
		case feat.Floats != nil:
			fmt.Printf("  %-24s float_list: %v\n", name, feat.Floats)
		}
	}
	return nil
}

func inspectDataset(dir string) error {
	backend, err := storage.NewOSFS("ds", dir, 0)
	if err != nil {
		return err
	}
	infos, err := backend.List(context.Background())
	if err != nil {
		return err
	}
	var shards int
	var total int64
	for _, fi := range infos {
		if !strings.Contains(fi.Name, ".tfrecord-") {
			continue
		}
		shards++
		total += fi.Size
	}
	if shards == 0 {
		return fmt.Errorf("%s: no *.tfrecord-* shards found", dir)
	}
	fmt.Printf("%s: %d shards, %d bytes total, mean shard %d bytes\n",
		dir, shards, total, total/int64(shards))
	return nil
}

// inspectMetrics prints a metrics snapshot, from a JSON file or a live
// endpoint. Histograms are summarised as count/sum; counters and gauges
// print one line per series, in the registry's deterministic order.
func inspectMetrics(src string) error {
	var data []byte
	var err error
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		url := src
		if !strings.HasSuffix(url, "/metrics.json") {
			url = strings.TrimSuffix(url, "/") + "/metrics.json"
		}
		resp, herr := http.Get(url)
		if herr != nil {
			return herr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", url, resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: not a metrics snapshot: %w", src, err)
	}
	if len(snap.Metrics) == 0 {
		return fmt.Errorf("%s: snapshot holds no series", src)
	}
	for _, p := range snap.Metrics {
		name := p.Name
		if len(p.Labels) > 0 {
			keys := make([]string, 0, len(p.Labels))
			for k := range p.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pairs := make([]string, 0, len(keys))
			for _, k := range keys {
				pairs = append(pairs, fmt.Sprintf("%s=%q", k, p.Labels[k]))
			}
			name += "{" + strings.Join(pairs, ",") + "}"
		}
		if p.Histogram != nil {
			fmt.Printf("%-64s count=%d sum=%g p50=%g p95=%g p99=%g\n",
				name, p.Histogram.Count, p.Histogram.Sum,
				p.Histogram.P50, p.Histogram.P95, p.Histogram.P99)
			continue
		}
		fmt.Printf("%-64s %g\n", name, *p.Value)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monarch-inspect:", err)
	os.Exit(1)
}
