package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"monarch/internal/obs"
	"monarch/internal/obs/cluster"
)

// inspectTop polls a node's /cluster.json and renders a live terminal
// view of the fleet: per-node hit ratios, tier occupancy, breaker and
// gossip state, per-job quota usage and eviction churn. -once renders
// a single frame (no screen clearing) and exits; otherwise the view
// refreshes every -interval until interrupted.
func inspectTop(args []string) error {
	once := false
	interval := 2 * time.Second
	var url string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-once" || a == "--once":
			once = true
		case a == "-interval" || a == "--interval":
			i++
			if i == len(args) {
				return fmt.Errorf("top: -interval needs a duration")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil || d <= 0 {
				return fmt.Errorf("top: bad -interval %q", args[i])
			}
			interval = d
		case strings.HasPrefix(a, "-"):
			return fmt.Errorf("top: unknown flag %q", a)
		case url != "":
			return fmt.Errorf("top: exactly one base URL expected")
		default:
			url = a
		}
	}
	if url == "" {
		return fmt.Errorf("usage: monarch-inspect top [-once] [-interval 2s] <url>")
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.HasSuffix(url, "/cluster.json") {
		url += "/cluster.json"
	}

	for {
		snap, err := fetchCluster(url)
		if err != nil {
			if once {
				return err
			}
			// Keep polling through transient failures — a node restart
			// mid-watch should not kill the dashboard.
			fmt.Printf("monarch-top: %v (retrying in %s)\n", err, interval)
		} else {
			if !once {
				fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
			}
			renderTop(os.Stdout, snap)
		}
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

// fetchCluster retrieves and decodes one /cluster.json snapshot.
func fetchCluster(url string) (*cluster.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap cluster.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%s: not a cluster snapshot: %w", url, err)
	}
	return &snap, nil
}

// sumSeries totals every point of one family in a snapshot, whatever
// its labels — e.g. monarch_tier_read_ops_total across tiers.
func sumSeries(s obs.Snapshot, name string) float64 {
	var sum float64
	for _, p := range s.Metrics {
		if p.Name == name && p.Value != nil {
			sum += *p.Value
		}
	}
	return sum
}

// tierCells renders one node's per-tier occupancy as "t0 62%" cells
// (absolute bytes when the tier reports no capacity).
func tierCells(s obs.Snapshot) string {
	type occ struct {
		tier      string
		used, cap float64
	}
	byTier := map[string]*occ{}
	var order []string
	for _, p := range s.Metrics {
		if p.Value == nil {
			continue
		}
		if p.Name != "monarch_tier_used_bytes" && p.Name != "monarch_tier_capacity_bytes" {
			continue
		}
		t := p.Labels["tier"]
		o := byTier[t]
		if o == nil {
			o = &occ{tier: t}
			byTier[t] = o
			order = append(order, t)
		}
		if p.Name == "monarch_tier_used_bytes" {
			o.used = *p.Value
		} else {
			o.cap = *p.Value
		}
	}
	sort.Strings(order)
	var cells []string
	for _, t := range order {
		o := byTier[t]
		if o.cap > 0 {
			cells = append(cells, fmt.Sprintf("t%s %3.0f%%", o.tier, 100*o.used/o.cap))
		} else if o.used > 0 {
			cells = append(cells, fmt.Sprintf("t%s %s", o.tier, sizeCell(o.used)))
		}
	}
	if len(cells) == 0 {
		return "-"
	}
	return strings.Join(cells, " ")
}

// sizeCell renders a byte count compactly.
func sizeCell(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// breakerCell compresses a node's per-tier breaker states into one
// cell: "ok" when every breaker is closed, else e.g. "t1:down".
func breakerCell(s obs.Snapshot) string {
	names := [...]string{"ok", "susp", "down"}
	var parts []string
	for _, p := range s.Metrics {
		if p.Name != "monarch_tier_breaker_state" || p.Value == nil {
			continue
		}
		if st := int(*p.Value); st >= 1 && st <= 2 {
			parts = append(parts, fmt.Sprintf("t%s:%s", p.Labels["tier"], names[st]))
		}
	}
	if len(parts) == 0 {
		return "ok"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// renderTop writes one frame of the cluster view.
func renderTop(w io.Writer, snap *cluster.Snapshot) {
	fmt.Fprintf(w, "monarch-top — %d node(s)", len(snap.Nodes))
	if len(snap.Unreachable) > 0 {
		var down []string
		for n := range snap.Unreachable {
			down = append(down, n)
		}
		sort.Strings(down)
		fmt.Fprintf(w, ", %d unreachable (%s)", len(down), strings.Join(down, ", "))
	}
	fmt.Fprintf(w, " — %s\n\n", time.Now().Format("15:04:05"))

	fmt.Fprintf(w, "%-12s %8s %6s %9s %9s %9s %7s  %-14s %s\n",
		"NODE", "UP", "HIT%", "READS", "PEERHITS", "EVICT", "BRKR", "TIERS", "GOSSIP")
	for _, n := range snap.Nodes {
		m := n.Metrics
		hit, _ := m.Value("monarch_hit_ratio")
		up, _ := m.Value("monarch_uptime_seconds")
		reads := sumSeries(m, "monarch_tier_read_ops_total")
		peerHits := sumSeries(m, "monarch_peer_hits_total")
		evict := sumSeries(m, "monarch_evictions_total")
		var alive, other int
		for _, g := range n.Gossip {
			if g.State == "alive" {
				alive++
			} else {
				other++
			}
		}
		gossip := "-"
		if len(n.Gossip) > 0 {
			gossip = fmt.Sprintf("%d alive", alive)
			if other > 0 {
				gossip += fmt.Sprintf(", %d not", other)
			}
		}
		fmt.Fprintf(w, "%-12s %8s %6.1f %9.0f %9.0f %9.0f %7s  %-14s %s\n",
			n.Node, time.Duration(up*float64(time.Second)).Round(time.Second),
			100*hit, reads, peerHits, evict, breakerCell(m), tierCells(m), gossip)
	}

	fleetReads := sumSeries(snap.Fleet, "monarch_tier_read_ops_total")
	fleetPeer := sumSeries(snap.Fleet, "monarch_peer_hits_total")
	fleetEvict := sumSeries(snap.Fleet, "monarch_evictions_total")
	fleetErr := sumSeries(snap.Fleet, "monarch_errors_total")
	fmt.Fprintf(w, "\nfleet: %.0f reads, %.0f peer hits, %.0f evictions, %.0f errors\n",
		fleetReads, fleetPeer, fleetEvict, fleetErr)

	if len(snap.Jobs) > 0 {
		fmt.Fprintf(w, "\n%-16s %9s %12s %9s %9s\n", "JOB", "READS", "BYTES", "HITS", "EVICT")
		jobs := make([]string, 0, len(snap.Jobs))
		for j := range snap.Jobs {
			jobs = append(jobs, j)
		}
		sort.Strings(jobs)
		for _, j := range jobs {
			jc := snap.Jobs[j]
			fmt.Fprintf(w, "%-16s %9d %12d %9d %9d\n",
				j, jc.ReadsServed, jc.BytesServed, jc.Hits, jc.Evictions)
		}
	}

	for _, d := range snap.Disagreements {
		var views []string
		for obsr, st := range d.Views {
			views = append(views, obsr+" sees "+st)
		}
		sort.Strings(views)
		fmt.Fprintf(w, "\nGOSSIP SPLIT on %s: %s\n", d.Subject, strings.Join(views, "; "))
	}
}
