package main

import (
	"bytes"
	"strings"
	"testing"

	"monarch/internal/obs"
	"monarch/internal/obs/cluster"
	"monarch/internal/peernet"
)

// topNode builds one node's snapshot with enough series to light every
// column of the top view.
func topNode(name string, hit float64, reads, peerHits int64) peernet.NodeStats {
	r := obs.NewRegistry()
	r.Gauge("monarch_hit_ratio", "").Set(hit)
	r.Gauge("monarch_uptime_seconds", "").Set(125)
	r.Counter("monarch_tier_read_ops_total", "", obs.L("tier", "0")).Add(reads)
	r.Counter("monarch_peer_hits_total", "").Add(peerHits)
	r.Counter("monarch_evictions_total", "", obs.L("tier", "0")).Add(2)
	r.Gauge("monarch_tier_used_bytes", "", obs.L("tier", "0")).Set(512)
	r.Gauge("monarch_tier_capacity_bytes", "", obs.L("tier", "0")).Set(1024)
	r.Gauge("monarch_tier_breaker_state", "", obs.L("tier", "1")).Set(2)
	return peernet.NodeStats{
		Node:    name,
		Metrics: r.Snapshot(),
		Gossip: []peernet.GossipEntry{
			{Node: name, State: "alive"},
			{Node: "node9", State: "suspect"},
		},
	}
}

func TestRenderTop(t *testing.T) {
	n0 := topNode("node0", 0.84, 100, 30)
	n1 := topNode("node1", 0.92, 60, 10)

	fleet := obs.NewRegistry()
	fleet.Counter("monarch_tier_read_ops_total", "", obs.L("tier", "0")).Add(160)
	fleet.Counter("monarch_peer_hits_total", "").Add(40)

	snap := &cluster.Snapshot{
		Nodes:       []peernet.NodeStats{n0, n1},
		Unreachable: map[string]string{"node2": "dial: refused"},
		Fleet:       fleet.Snapshot(),
		Jobs: map[string]peernet.JobCounters{
			"resnet": {ReadsServed: 80, BytesServed: 1 << 20, Hits: 64, Evictions: 3},
		},
		Disagreements: []cluster.Disagreement{{
			Subject: "node9",
			Views:   map[string]string{"node0": "suspect", "node1": "alive"},
		}},
	}

	var buf bytes.Buffer
	renderTop(&buf, snap)
	out := buf.String()

	for _, want := range []string{
		"2 node(s), 1 unreachable (node2)",
		"NODE", "HIT%", "PEERHITS", "BRKR", "GOSSIP",
		"node0", "84.0", "t1:down", "t0  50%", "1 alive, 1 not",
		"fleet: 160 reads, 40 peer hits",
		"JOB",
		"resnet", "1048576",
		"GOSSIP SPLIT on node9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("top frame missing %q:\n%s", want, out)
		}
	}
}

func TestSizeCell(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{100, "100B"}, {2048, "2.0K"}, {3 << 20, "3.0M"}, {5 << 30, "5.0G"},
	} {
		if got := sizeCell(tc.in); got != tc.want {
			t.Fatalf("sizeCell(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBreakerCellAllClosed(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("monarch_tier_breaker_state", "", obs.L("tier", "0")).Set(0)
	if got := breakerCell(r.Snapshot()); got != "ok" {
		t.Fatalf("breakerCell = %q, want ok", got)
	}
}
