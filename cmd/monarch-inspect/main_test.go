package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"monarch/internal/obs"
)

// deadURL reserves a port and closes it, so nothing is listening.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func TestInspectMetricsDeadURL(t *testing.T) {
	if err := inspectMetrics(deadURL(t)); err == nil {
		t.Fatal("dead URL produced no error")
	}
}

func TestInspectMetricsMissingFile(t *testing.T) {
	if err := inspectMetrics(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file produced no error")
	}
}

func TestInspectMetricsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectMetrics(path); err == nil || !strings.Contains(err.Error(), "not a metrics snapshot") {
		t.Fatalf("garbage file error = %v", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectMetrics(empty); err == nil || !strings.Contains(err.Error(), "no series") {
		t.Fatalf("empty snapshot error = %v", err)
	}
}

func TestInspectMetricsFromSnapshotFile(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("i_ops_total", "").Add(7)
	r.Histogram("i_seconds", "", []float64{1, 10}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectMetrics(path); err != nil {
		t.Fatal(err)
	}
}

func TestInspectTraceArgErrors(t *testing.T) {
	if err := inspectTrace(nil); err == nil {
		t.Fatal("no args accepted")
	}
	if err := inspectTrace([]string{"-bogus", "f"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := inspectTrace([]string{"a", "b"}); err == nil {
		t.Fatal("two paths accepted")
	}
	if err := inspectTrace([]string{filepath.Join(t.TempDir(), "nope.jsonl")}); err == nil {
		t.Fatal("missing trace accepted")
	}
}
