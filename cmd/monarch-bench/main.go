// Command monarch-bench regenerates the paper's figures and tables.
//
// Each experiment runs the full methodology — every setup, model and
// seeded repetition — on the simulated Frontera node and prints the
// resulting charts, tables and shape checks. The -scale flag trades
// fidelity for time: 1.0 simulates the paper's full 100 GiB / 200 GiB
// datasets; the default 1/16 keeps a full sweep to a few minutes.
//
// Usage:
//
//	monarch-bench                      # run everything at scale 1/16
//	monarch-bench -exp fig3,io-ops    # selected experiments
//	monarch-bench -scale 1 -runs 7    # the paper's full methodology
//	monarch-bench -list               # show the experiment registry
//	monarch-bench -csv out/           # also dump tables as CSV
//	monarch-bench -capture t.jsonl    # capture an access trace of the
//	                                  # standard workload at -scale
//	monarch-bench -replay t.jsonl     # re-drive a captured trace
//	                                  # (-replay-mode faithful|live)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"monarch/internal/experiments"
	"monarch/internal/trace"
	"monarch/internal/trace/replay"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		expFlag    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale      = flag.Float64("scale", 1.0/16, "dataset scale in (0,1]; 1 = the paper's sizes")
		runs       = flag.Int("runs", 7, "seeded repetitions per configuration (paper: 7)")
		epochs     = flag.Int("epochs", 3, "training epochs per run (paper: 3)")
		seed       = flag.Uint64("seed", 1, "base RNG seed")
		noNoise    = flag.Bool("no-interference", false, "disable the PFS interference model")
		csvDir     = flag.String("csv", "", "directory to also write tables as CSV")
		paramsIn   = flag.String("params", "", "JSON file overriding the calibrated parameters")
		paramsDump = flag.String("dump-params", "", "write the effective parameters as JSON and exit")

		capturePath = flag.String("capture", "", "capture the standard workload's access trace to this path and exit (.bin for binary)")
		traceSample = flag.Int("trace-sample", 0, "with -capture, keep 1-in-N plain read hits (<=1 keeps all)")
		replayPath  = flag.String("replay", "", "replay a captured access trace and exit")
		replayMode  = flag.String("replay-mode", "faithful", "replay strategy: faithful (re-enact + verify) or live (rebuild the stack)")
		replayWork  = flag.Int("replay-workers", 16, "replay worker processes")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n%-22s paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return
	}

	p := experiments.DefaultParams(*scale)
	p.Runs = *runs
	p.Epochs = *epochs
	p.BaseSeed = *seed
	p.UseInterference = !*noNoise
	if *paramsIn != "" {
		data, err := os.ReadFile(*paramsIn)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &p); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *paramsIn, err))
		}
	}
	if *paramsDump != "" {
		data, err := json.MarshalIndent(p, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*paramsDump, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote effective parameters to %s\n", *paramsDump)
		return
	}
	if *replayPath != "" {
		if err := runReplay(*replayPath, *replayMode, *replayWork, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *capturePath != "" {
		p.Runs = 1
		p.TraceSample = *traceSample
		start := time.Now()
		r, err := experiments.CaptureTrace(p, *capturePath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("captured %s/%s/%s at scale %g to %s (%d epochs, %d PFS data ops, %s)\n",
			r.Setup, r.Model, r.Dataset, p.Scale, *capturePath,
			len(r.PFSOpsPerEpoch), r.TotalPFSOps(), time.Since(start).Round(time.Millisecond))
		fmt.Printf("analyze with: monarch-inspect trace %s\n", *capturePath)
		return
	}
	p.Cache = experiments.NewCache()

	var selected []experiments.Experiment
	if *expFlag == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	for _, e := range selected {
		fmt.Printf("==> %s — %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.Paper)
		start := time.Now()
		o, err := e.Run(p)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		o.Render(os.Stdout)
		fmt.Printf("  (%d checks, %s)\n\n", len(o.Checks), time.Since(start).Round(time.Millisecond))
		failures += len(o.Failed())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, e.ID, o); err != nil {
				fatal(err)
			}
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d shape check(s) failed", failures))
	}
}

// runReplay loads a captured trace and re-drives it. Faithful mode
// verifies the replay's statistics against the capture's trailer and
// fails the command on any mismatch.
func runReplay(path, mode string, workers int, seed uint64) error {
	t, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	opts := replay.Options{Workers: workers, Seed: seed}
	switch mode {
	case "faithful":
		opts.Mode = replay.Faithful
	case "live":
		opts.Mode = replay.Live
	default:
		return fmt.Errorf("unknown -replay-mode %q (want faithful or live)", mode)
	}
	rep, err := replay.Run(t, opts)
	if err != nil {
		return err
	}
	rep.RenderText(os.Stdout, t)
	if len(rep.Mismatches) > 0 {
		return fmt.Errorf("replay statistics diverge from the capture (%d counter(s))", len(rep.Mismatches))
	}
	return nil
}

func writeCSVs(dir, id string, o *experiments.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range o.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", id, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monarch-bench:", err)
	os.Exit(1)
}
