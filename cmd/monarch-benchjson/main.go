// Command monarch-benchjson converts `go test -bench` output into a
// stable JSON document, so benchmark baselines can be committed and
// diffed across changes (make bench writes BENCH_chunked.json with it).
//
// It reads the benchmark run from stdin, echoes it unchanged to stdout
// (the run stays visible in the terminal), and writes the parsed
// results to the -o file.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/core/ | monarch-benchjson -o BENCH_chunked.json
//
// With -metrics, a metrics snapshot file (JSON, as written by the
// instrumented benchmarks via MONARCH_METRICS_OUT or fetched from a
// /metrics.json endpoint) is validated and embedded in the document, so
// a bench baseline carries the counters behind its numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"monarch/internal/obs"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the file layout: the run's environment header plus every
// benchmark result in run order, optionally with the metrics snapshot
// the run produced.
type Document struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []Result      `json:"results"`
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write parsed results to this JSON file (required)")
	metrics := flag.String("metrics", "", "embed this metrics snapshot JSON file in the document")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "monarch-benchjson: -o file required")
		os.Exit(2)
	}

	var doc Document
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the run through to the terminal
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "monarch-benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "monarch-benchjson: no benchmark lines found")
		os.Exit(1)
	}
	if *metrics != "" {
		// Read after stdin is drained: the snapshot file is written by
		// the benchmark process feeding the pipe.
		raw, err := os.ReadFile(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monarch-benchjson: %v\n", err)
			os.Exit(1)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil || len(snap.Metrics) == 0 {
			fmt.Fprintf(os.Stderr, "monarch-benchjson: %s is not a metrics snapshot (err=%v)\n", *metrics, err)
			os.Exit(1)
		}
		doc.Metrics = &snap
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "monarch-benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "monarch-benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "monarch-benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkPlacementChunked-8  50  4616668 ns/op  3634.05 MB/s  33569318 B/op  325 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix: baselines diff across machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
