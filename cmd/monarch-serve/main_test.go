package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tmpDirs builds a valid cache root and a dataset dir with one file per
// job, so startup tests fail on exactly the path under test.
func tmpDirs(t *testing.T) (root, pfs string) {
	t.Helper()
	root = t.TempDir()
	pfs = t.TempDir()
	for _, name := range []string{"jobA/f0", "jobB/f0"} {
		p := filepath.Join(pfs, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, make([]byte, 64), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root, pfs
}

func TestParseJobs(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		want    int
		wantErr string
	}{
		{spec: "jobA=0.5,jobB=0.3", want: 2},
		{spec: " jobA=0.5 , jobB=0.3 ", want: 2},
		{spec: "jobA=0.5,", want: 1},
		{spec: "", wantErr: "empty"},
		{spec: "jobA", wantErr: "want job=share"},
		{spec: "=0.5", wantErr: "want job=share"},
		{spec: "jobA=", wantErr: "want job=share"},
		{spec: "jobA=half", wantErr: "bad -jobs share"},
	} {
		tenants, err := parseJobs(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseJobs(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseJobs(%q): %v", tc.spec, err)
			continue
		}
		if len(tenants) != tc.want {
			t.Errorf("parseJobs(%q) = %d tenants, want %d", tc.spec, len(tenants), tc.want)
		}
	}
}

// TestServeConfigValidate covers the flag-conflict matrix: every
// misconfiguration must be rejected up front with a message naming the
// offending flag, before any directory or socket is touched.
func TestServeConfigValidate(t *testing.T) {
	base := serveConfig{addr: ":0", root: "/r", quota: 1 << 20, replicas: 1}
	for _, tc := range []struct {
		name    string
		mutate  func(*serveConfig)
		wantErr string
	}{
		{"ok plain", func(c *serveConfig) {}, ""},
		{"ok tenant", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d" }, ""},
		{"bad replicas", func(c *serveConfig) { c.replicas = 0 }, "-replicas"},
		{"self without peers", func(c *serveConfig) { c.self = "n0" }, "-self and -peers"},
		{"peers without self", func(c *serveConfig) { c.peers = "n1=h:1" }, "-self and -peers"},
		{"jobs without pfs", func(c *serveConfig) { c.jobs = "a=0.5" }, "-jobs needs -pfs"},
		{"pfs without jobs", func(c *serveConfig) { c.pfs = "/d" }, "-pfs needs -jobs"},
		{"jobs with unlimited quota", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d"; c.quota = 0 }, "conflicting -quota"},
		{"jobs with write", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d"; c.write = true }, "-write conflicts"},
		{"jobs bad spec", func(c *serveConfig) { c.jobs = "a=x"; c.pfs = "/d" }, "bad -jobs share"},
	} {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestServeStartupFailures drives serve() itself through the startup
// failure paths: each run must return an error (never hang, never
// partially start) when a directory is missing or an address cannot be
// bound. A timeout guards against a misconfiguration that blocks in
// the serve loop instead of failing.
func TestServeStartupFailures(t *testing.T) {
	root, pfs := tmpDirs(t)
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  serveConfig
	}{
		{"bad addr", serveConfig{addr: "localhost:notaport", root: root, replicas: 1}},
		{"missing root", serveConfig{addr: ":0", root: filepath.Join(root, "no/such/dir"), replicas: 1}},
		{"root is a file", serveConfig{addr: ":0", root: file, replicas: 1}},
		{"tenant bad addr", serveConfig{addr: "localhost:notaport", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.5,jobB=0.3"}},
		{"tenant missing pfs dir", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: filepath.Join(pfs, "nope"), jobs: "jobA=0.5"}},
		{"tenant share out of range", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=1.5"}},
		{"tenant shares oversubscribed", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.7,jobB=0.7"}},
		{"tenant duplicate job", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.3,jobA=0.3"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			errc := make(chan error, 1)
			go func() { errc <- serve(tc.cfg) }()
			select {
			case err := <-errc:
				if err == nil {
					t.Fatal("serve() succeeded on a broken configuration")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("serve() hung instead of failing startup")
			}
		})
	}
}
