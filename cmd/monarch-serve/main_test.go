package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"monarch"
	"monarch/internal/storage"
)

// tmpDirs builds a valid cache root and a dataset dir with one file per
// job, so startup tests fail on exactly the path under test.
func tmpDirs(t *testing.T) (root, pfs string) {
	t.Helper()
	root = t.TempDir()
	pfs = t.TempDir()
	for _, name := range []string{"jobA/f0", "jobB/f0"} {
		p := filepath.Join(pfs, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, make([]byte, 64), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root, pfs
}

func TestParseJobs(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		want    int
		wantErr string
	}{
		{spec: "jobA=0.5,jobB=0.3", want: 2},
		{spec: " jobA=0.5 , jobB=0.3 ", want: 2},
		{spec: "jobA=0.5,", want: 1},
		{spec: "", wantErr: "empty"},
		{spec: "jobA", wantErr: "want job=share"},
		{spec: "=0.5", wantErr: "want job=share"},
		{spec: "jobA=", wantErr: "want job=share"},
		{spec: "jobA=half", wantErr: "bad -jobs share"},
	} {
		tenants, err := parseJobs(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseJobs(%q) err = %v, want containing %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseJobs(%q): %v", tc.spec, err)
			continue
		}
		if len(tenants) != tc.want {
			t.Errorf("parseJobs(%q) = %d tenants, want %d", tc.spec, len(tenants), tc.want)
		}
	}
}

// TestServeConfigValidate covers the flag-conflict matrix: every
// misconfiguration must be rejected up front with a message naming the
// offending flag, before any directory or socket is touched.
func TestServeConfigValidate(t *testing.T) {
	base := serveConfig{addr: ":0", root: "/r", quota: 1 << 20, replicas: 1}
	for _, tc := range []struct {
		name    string
		mutate  func(*serveConfig)
		wantErr string
	}{
		{"ok plain", func(c *serveConfig) {}, ""},
		{"ok tenant", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d" }, ""},
		{"bad replicas", func(c *serveConfig) { c.replicas = 0 }, "-replicas"},
		{"self without peers", func(c *serveConfig) { c.self = "n0" }, "-self and -peers"},
		{"peers without self", func(c *serveConfig) { c.peers = "n1=h:1" }, "-self and -peers"},
		{"jobs without pfs", func(c *serveConfig) { c.jobs = "a=0.5" }, "-jobs needs -pfs"},
		{"pfs without jobs", func(c *serveConfig) { c.pfs = "/d" }, "-pfs needs -jobs"},
		{"jobs with unlimited quota", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d"; c.quota = 0 }, "conflicting -quota"},
		{"jobs with write", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d"; c.write = true }, ""},
		{"jobs with write and journal", func(c *serveConfig) {
			c.jobs = "a=0.5"
			c.pfs = "/d"
			c.write = true
			c.journal = "/j/wal.mj"
		}, ""},
		{"journal without write", func(c *serveConfig) { c.jobs = "a=0.5"; c.pfs = "/d"; c.journal = "/j/wal.mj" }, "-journal needs -write"},
		{"journal in plain mode", func(c *serveConfig) { c.write = true; c.journal = "/j/wal.mj" }, "-journal needs -jobs"},
		{"jobs bad spec", func(c *serveConfig) { c.jobs = "a=x"; c.pfs = "/d" }, "bad -jobs share"},
	} {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestServeStartupFailures drives serve() itself through the startup
// failure paths: each run must return an error (never hang, never
// partially start) when a directory is missing or an address cannot be
// bound. A timeout guards against a misconfiguration that blocks in
// the serve loop instead of failing.
func TestServeStartupFailures(t *testing.T) {
	root, pfs := tmpDirs(t)
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  serveConfig
	}{
		{"bad addr", serveConfig{addr: "localhost:notaport", root: root, replicas: 1}},
		{"missing root", serveConfig{addr: ":0", root: filepath.Join(root, "no/such/dir"), replicas: 1}},
		{"root is a file", serveConfig{addr: ":0", root: file, replicas: 1}},
		{"tenant bad addr", serveConfig{addr: "localhost:notaport", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.5,jobB=0.3"}},
		{"tenant missing pfs dir", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: filepath.Join(pfs, "nope"), jobs: "jobA=0.5"}},
		{"tenant share out of range", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=1.5"}},
		{"tenant shares oversubscribed", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.7,jobB=0.7"}},
		{"tenant duplicate job", serveConfig{addr: ":0", root: root, quota: 1 << 20,
			replicas: 1, pfs: pfs, jobs: "jobA=0.3,jobA=0.3"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			errc := make(chan error, 1)
			go func() { errc <- serve(tc.cfg) }()
			select {
			case err := <-errc:
				if err == nil {
					t.Fatal("serve() succeeded on a broken configuration")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("serve() hung instead of failing startup")
			}
		})
	}
}

// TestMonarchBackendWrite covers the writable tenant adapter: remote
// WRITE is whole-file PUT through Create+WriteAt (including replace),
// REMOVE distinguishes ghosts from dataset files, and the read-only
// adapter rejects every mutation — the exact semantics the peernet
// server relays onto the wire.
func TestMonarchBackendWrite(t *testing.T) {
	ctx := context.Background()
	pfs := monarch.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, "jobA/f0", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	tier0 := monarch.NewMemFS("ssd", 1<<20)
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(2),
		FullFileFetch: true,
		Write: monarch.WriteConfig{
			Enabled:    true,
			Durability: func(string) monarch.Durability { return monarch.WriteBack },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	b := &monarchBackend{m: m, tier0: tier0, writable: true}

	if err := b.WriteFile(ctx, "ckpt/s0", []byte("checkpoint v1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := b.ReadFile(ctx, "ckpt/s0")
	if err != nil || !bytes.Equal(got, []byte("checkpoint v1")) {
		t.Fatalf("readback: %q err=%v", got, err)
	}
	// Whole-file PUT replaces, including a size change.
	if err := b.WriteFile(ctx, "ckpt/s0", []byte("v2")); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if got, _ = b.ReadFile(ctx, "ckpt/s0"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("after replace: %q", got)
	}
	// Dataset files are read-only in every mode.
	if err := b.WriteFile(ctx, "jobA/f0", []byte("clobber")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("dataset write: %v, want ErrReadOnly", err)
	}
	if err := b.Remove(ctx, "jobA/f0"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("dataset remove: %v, want ErrReadOnly", err)
	}
	// Ghosts surface as ErrNotExist, not read-only.
	if err := b.Remove(ctx, "ckpt/ghost"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("ghost remove: %v, want ErrNotExist", err)
	}
	if err := b.Remove(ctx, "ckpt/s0"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := b.ReadFile(ctx, "ckpt/s0"); err == nil {
		t.Fatal("removed file still readable")
	}

	ro := &monarchBackend{m: m, tier0: tier0}
	if err := ro.WriteFile(ctx, "ckpt/s1", []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("read-only write: %v, want ErrReadOnly", err)
	}
	if err := ro.Remove(ctx, "ckpt/s1"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("read-only remove: %v, want ErrReadOnly", err)
	}
}
