// Command monarch-serve exposes a node's tier-0 cache directory to
// sibling nodes over the peernet wire protocol, so their MONARCH
// instances can slot this node's cache into their hierarchies as a
// peer tier.
//
// Usage:
//
//	monarch-serve -root /mnt/ssd/monarch              # serve a cache dir
//	monarch-serve -root DIR -addr :9077 -quota 64GiB-ish-bytes
//	monarch-serve -root DIR -write                    # accept remote writes
//	monarch-serve -root DIR -metrics :9078            # capacity gauges + pprof
//	monarch-serve -root DIR -self node0 \
//	    -peers node1=host1:9077,node2=host2:9077     # gossip membership
//	monarch-serve -root DIR -quota 64000000000 \
//	    -pfs /lustre/datasets -jobs jobA=0.5,jobB=0.3 # multi-tenant cache
//	monarch-serve -root DIR -quota N -pfs /lustre/ds \
//	    -jobs jobA=0.5 -write -journal DIR/wal.mj    # writable tenant cache
//	monarch-serve -selftest                           # 2-node loopback smoke
//	monarch-serve -chaos                              # kill/rejoin chaos smoke
//	monarch-serve -crashsmoke                         # write-back crash/recovery smoke
//
// The server is read-only by default: peers may READ/STAT/LIST/PING but
// never mutate this node's cache (placement stays a local decision).
//
// With -jobs the daemon becomes a multi-tenant MONARCH node: -root is
// managed as the SSD cache tier over the read-only -pfs dataset
// directory, served through a full middleware instance with the
// heat-driven eviction engine on. Every file's first path segment names
// its job ("jobA/shard-0003" belongs to jobA); -jobs declares each
// job's guaranteed share of the -quota (shares in [0,1], sum <= 1),
// with unused capacity borrowable by any job until its owner reclaims
// it. Reads arriving over the wire heat files, drive placement and
// eviction, and move per-job fairness counters
// (monarch_job_read_ops_total, monarch_job_tier_used_bytes, ...)
// exported on -metrics. -epoch-every sets the wall-clock stand-in for
// the training loop's epoch marks, which drive heat decay. Tenant mode
// requires a finite -quota (shares of an unlimited tier are
// meaningless).
//
// Tenant mode with -write routes remote WRITE/REMOVE through the
// middleware's write path instead of the raw cache directory: a WRITE
// becomes Create+WriteAt on the managed namespace and a REMOVE tears
// the file down everywhere it lives. With -journal PATH the checkpoint
// namespace runs write-back — the ack lands once tier 0 and the
// crash-safe WAL hold the bytes, and a background flusher retires them
// to the PFS; without -journal writes are write-through (the PFS has
// the bytes before the ack). Dataset files stay read-only either way.
//
// -crashsmoke is the write-path drill behind `make crash-smoke`: the
// parent re-execs itself as a child that bursts journaled write-back
// chunks into a scratch stack and prints an ACK line per landed write;
// the parent SIGKILLs it mid-burst, reopens the same directories (WAL
// replay), and verifies every acked byte back byte-for-byte.
//
// With -self and -peers the node joins the gossip membership: it
// heartbeats every sibling over the same wire protocol (views ride
// PING frames), answers inbound heartbeats with its own view, logs
// liveness transitions, and exposes per-peer state gauges on -metrics.
// -replicas records the replica-set width R the cluster's rings run
// with (consumers derive ownership from OwnersOf(name, R); every node
// must agree on R).
//
// -selftest runs a self-contained two-node cluster over loopback TCP —
// real servers, a reshuffled sharded job — and exits non-zero unless
// sibling caches actually served reads; `make peer-smoke` wires it into
// the test gauntlet. -chaos runs the churn drill: a 6-node replicated
// cluster with gossip membership, one node killed mid-run and rejoined
// two epochs later, exiting non-zero unless the kill cost zero PFS
// fallbacks, both convergences landed, and no goroutines leaked;
// `make chaos-smoke` wires it in.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"monarch"

	"monarch/internal/experiments"
	"monarch/internal/obs"
	"monarch/internal/obs/cluster"
	"monarch/internal/peernet"
	"monarch/internal/storage"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

func main() {
	var (
		addr     = flag.String("addr", ":9077", "listen address for the peer wire protocol")
		root     = flag.String("root", "", "cache directory to serve (required unless -selftest/-chaos)")
		quota    = flag.Int64("quota", 0, "capacity the store reports, in bytes (0 = unlimited)")
		write    = flag.Bool("write", false, "accept remote WRITE/REMOVE (default read-only)")
		journal  = flag.String("journal", "", "crash-safe WAL path for write-back acks (tenant mode with -write)")
		metrics  = flag.String("metrics", "", "optional address serving /metrics for this store")
		selftest = flag.Bool("selftest", false, "run a 2-node loopback smoke test and exit")
		chaos    = flag.Bool("chaos", false, "run the kill/rejoin chaos smoke test and exit")
		crash    = flag.Bool("crashsmoke", false, "run the write-back crash/recovery smoke test and exit")
		crashDir = flag.String("crashsmoke-child", "", "internal: run as the crash-smoke burst child in this directory")

		self     = flag.String("self", "", "this node's ring ID (enables gossip membership with -peers)")
		peers    = flag.String("peers", "", "comma-separated sibling servers, id=host:port each")
		replicas = flag.Int("replicas", 1, "replica-set width R the cluster's ownership rings use")
		hbEvery  = flag.Duration("heartbeat", 250*time.Millisecond, "gossip heartbeat interval")
		suspect  = flag.Duration("suspect-after", time.Second, "silence before a peer turns Suspect")
		dead     = flag.Duration("dead-after", 3*time.Second, "silence before a peer turns Dead")

		pfs     = flag.String("pfs", "", "read-only dataset directory (enables multi-tenant mode with -jobs)")
		jobs    = flag.String("jobs", "", "per-job quota shares, job=share each (e.g. jobA=0.5,jobB=0.3)")
		epochEv = flag.Duration("epoch-every", time.Minute, "wall-clock epoch length driving heat decay in tenant mode (0 = never decay)")
	)
	flag.Parse()

	if *crashDir != "" {
		os.Exit(runCrashChild(*crashDir))
	}
	if *crash {
		os.Exit(runCrashSmoke())
	}
	if *selftest {
		os.Exit(runSelftest())
	}
	if *chaos {
		os.Exit(runChaos())
	}
	if *root == "" {
		fmt.Fprintln(os.Stderr, "monarch-serve: -root is required (or use -selftest/-chaos)")
		os.Exit(2)
	}
	cfg := serveConfig{
		addr: *addr, root: *root, quota: *quota, write: *write, journal: *journal, metrics: *metrics,
		self: *self, peers: *peers, replicas: *replicas,
		heartbeat: *hbEvery, suspectAfter: *suspect, deadAfter: *dead,
		pfs: *pfs, jobs: *jobs, epochEvery: *epochEv,
	}
	if err := serve(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "monarch-serve:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	addr, root              string
	quota                   int64
	write                   bool
	journal                 string
	metrics                 string
	self, peers             string
	replicas                int
	heartbeat               time.Duration
	suspectAfter, deadAfter time.Duration
	pfs, jobs               string
	epochEvery              time.Duration
}

// validate rejects flag combinations before any resource is touched,
// so misconfigurations fail fast with one clear message.
func (cfg serveConfig) validate() error {
	if cfg.replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", cfg.replicas)
	}
	if (cfg.self == "") != (cfg.peers == "") {
		return fmt.Errorf("-self and -peers must be set together")
	}
	if cfg.jobs != "" {
		if cfg.pfs == "" {
			return fmt.Errorf("-jobs needs -pfs: the tenant cache is placed from a dataset directory")
		}
		if cfg.quota <= 0 {
			return fmt.Errorf("conflicting -quota: -jobs declares shares of the cache tier, so -quota must be a positive byte count (got %d)", cfg.quota)
		}
		if _, err := parseJobs(cfg.jobs); err != nil {
			return err
		}
	} else if cfg.pfs != "" {
		return fmt.Errorf("-pfs needs -jobs: declare at least one tenant share")
	}
	if cfg.journal != "" {
		if !cfg.write {
			return fmt.Errorf("-journal needs -write: the WAL guards write-back acks")
		}
		if cfg.jobs == "" {
			return fmt.Errorf("-journal needs -jobs: plain mode writes land on the served directory directly; only the middleware's write path journals")
		}
	}
	return nil
}

// parseJobs decodes the -jobs flag: comma-separated job=share, each
// share a fraction of the cache tier in [0,1]. Range, duplicate and
// sum-of-shares validation happens in core when the middleware is
// assembled; this only parses.
func parseJobs(spec string) ([]monarch.TenantConfig, error) {
	var tenants []monarch.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		job, val, ok := strings.Cut(part, "=")
		if !ok || job == "" || val == "" {
			return nil, fmt.Errorf("bad -jobs entry %q (want job=share)", part)
		}
		share, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -jobs share %q: %v", part, err)
		}
		tenants = append(tenants, monarch.TenantConfig{Job: job, Share: share})
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("-jobs is empty (want job=share,...)")
	}
	return tenants, nil
}

// parsePeers decodes the -peers flag: comma-separated id=host:port.
func parsePeers(spec string) (ids []string, addrs map[string]string, err error) {
	addrs = map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		if _, dup := addrs[id]; dup {
			return nil, nil, fmt.Errorf("duplicate peer id %q in -peers", id)
		}
		ids = append(ids, id)
		addrs[id] = addr
	}
	return ids, addrs, nil
}

// gossipEntries renders a membership view as STATS-frame gossip
// entries, sorted by node for deterministic output. Nil membership
// (no -self/-peers) yields nil.
func gossipEntries(mem *peernet.Membership) []peernet.GossipEntry {
	if mem == nil {
		return nil
	}
	snap := mem.Snapshot()
	entries := make([]peernet.GossipEntry, 0, len(snap))
	for peer, st := range snap {
		entries = append(entries, peernet.GossipEntry{Node: peer, State: st.String()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	return entries
}

// gossipHandler serves /debug/gossip: this node's live membership view
// as a JSON object of peer -> state. Without gossip it reports so
// instead of 404ing, so operators can tell "not enabled" from "wrong
// port".
func gossipHandler(mem *peernet.Membership) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if mem == nil {
			fmt.Fprintln(w, `{"gossip":"disabled"}`)
			return
		}
		view := map[string]string{}
		for peer, st := range mem.Snapshot() {
			view[peer] = st.String()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"self": mem.Self(), "peers": view})
	})
}

func serve(cfg serveConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.jobs != "" {
		return serveTenants(cfg)
	}
	store, err := storage.NewOSFS("tier0", cfg.root, cfg.quota)
	if err != nil {
		return err
	}

	// Gossip membership: requires both -self and -peers.
	var mem *peernet.Membership
	var hb *peernet.Heartbeater
	var peerIDs []string
	clients := map[string]*peernet.Client{}
	if cfg.self != "" {
		ids, addrs, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		peerIDs = ids
		mem, err = peernet.NewMembership(peernet.MembershipConfig{
			Self:         cfg.self,
			Peers:        ids,
			SuspectAfter: cfg.suspectAfter,
			DeadAfter:    cfg.deadAfter,
			OnChange: func(peer string, from, to peernet.PeerState) {
				fmt.Printf("monarch-serve: peer %s %s -> %s\n", peer, from, to)
			},
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:" + id,
				Dial: peernet.TCPDialer(addrs[id], cfg.heartbeat),
			})
			if err != nil {
				return err
			}
			defer c.Close()
			clients[id] = c
		}
		hb, err = peernet.NewHeartbeater(mem, clients, cfg.heartbeat)
		if err != nil {
			return err
		}
	}

	// The registry exists whether or not -metrics serves it: the STATS
	// frame answers with its snapshot either way, so a fleet aggregator
	// on any sibling can poll this node.
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, time.Now())
	reg.GaugeFunc("monarch_serve_capacity_bytes",
		"Capacity the served store reports (0 = unlimited).",
		func() float64 { return float64(store.Capacity()) })
	reg.GaugeFunc("monarch_serve_used_bytes",
		"Bytes currently held by the served store.",
		func() float64 { return float64(store.Used()) })
	reg.GaugeFunc("monarch_serve_replicas",
		"Replica-set width R the cluster's ownership rings run with.",
		func() float64 { return float64(cfg.replicas) })
	if mem != nil {
		mem.Instrument(reg)
	}
	nodeName := cfg.self
	if nodeName == "" {
		nodeName = "monarch-serve"
	}
	statsFn := func() (peernet.NodeStats, error) {
		ns := peernet.NodeStats{Node: nodeName, Metrics: reg.Snapshot()}
		ns.Gossip = gossipEntries(mem)
		return ns, nil
	}

	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend:    store,
		AllowWrite: cfg.write,
		Membership: mem,
		Stats:      statsFn,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	mode := "read-only"
	if cfg.write {
		mode = "read-write"
	}
	fmt.Printf("monarch-serve: serving %s (%s) on %s\n", cfg.root, mode, ln.Addr())
	if mem != nil {
		fmt.Printf("monarch-serve: gossip as %s with %d peers, R=%d, heartbeat %v (suspect %v, dead %v)\n",
			cfg.self, len(mem.Snapshot()), cfg.replicas, cfg.heartbeat, cfg.suspectAfter, cfg.deadAfter)
		hb.Start()
		defer hb.Stop()
	}

	if cfg.metrics != "" {
		routes := map[string]http.Handler{
			"/debug/gossip": gossipHandler(mem),
		}
		if mem != nil {
			// The gossip clients double as fleet-stats sources: the
			// aggregator polls every sibling's STATS frame per scrape and
			// serves the merged view from this node.
			var sources []cluster.Source
			for _, id := range peerIDs {
				sources = append(sources, cluster.Source{Node: id, Client: clients[id]})
			}
			agg := cluster.New(cluster.Config{Self: statsFn, Sources: sources})
			for pattern, h := range agg.Routes() {
				routes[pattern] = h
			}
		}
		handler := reg.HandlerWith(obs.HandlerOpts{
			Health: func() obs.Health {
				h := obs.Health{}
				if mem != nil {
					h.Gossip = map[string]string{}
					for peer, st := range mem.Snapshot() {
						h.Gossip[peer] = st.String()
					}
				}
				return h
			},
			Routes: routes,
		})
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			return err
		}
		fmt.Printf("monarch-serve: metrics on http://%s/metrics\n", mln.Addr())
		go func() { _ = http.Serve(mln, handler) }()
	}

	// Serve until SIGINT/SIGTERM, then close connections and drain.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("monarch-serve: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}

// monarchBackend adapts a middleware instance to the storage.Backend
// surface the peernet server speaks, so remote reads flow through the
// full MONARCH read path — heating files, triggering placements and
// evictions, moving per-job counters — instead of hitting the cache
// directory raw. With writable set (-write), remote WRITE/REMOVE flow
// through the write path the same way: a WRITE is Create+WriteAt on
// the managed namespace (acked per the configured durability), a
// REMOVE tears the file down everywhere. Dataset files remain
// read-only in every mode.
type monarchBackend struct {
	m        *monarch.Monarch
	tier0    monarch.Backend
	writable bool
}

func (b *monarchBackend) Name() string { return "tenant" }
func (b *monarchBackend) List(ctx context.Context) ([]storage.FileInfo, error) {
	return b.m.Files(), nil
}
func (b *monarchBackend) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	return b.m.Stat(name)
}
func (b *monarchBackend) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return b.m.ReadAt(ctx, name, p, off)
}
func (b *monarchBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	return b.m.ReadFull(ctx, name)
}
func (b *monarchBackend) WriteFile(ctx context.Context, name string, data []byte) error {
	if !b.writable {
		return storage.ErrReadOnly
	}
	// Whole-file PUT semantics, like every other backend: a WRITE of an
	// existing writable file replaces it. Dataset files fail the inner
	// Remove with ErrNotWritable, surfaced as read-only on the wire.
	err := b.m.Create(ctx, name, int64(len(data)))
	if errors.Is(err, storage.ErrExist) {
		if rerr := b.m.Remove(ctx, name); rerr != nil {
			return writeErr(rerr)
		}
		err = b.m.Create(ctx, name, int64(len(data)))
	}
	if err != nil {
		return writeErr(err)
	}
	if len(data) == 0 {
		return nil
	}
	_, err = b.m.WriteAt(ctx, name, data, 0)
	return writeErr(err)
}
func (b *monarchBackend) Remove(ctx context.Context, name string) error {
	if !b.writable {
		return storage.ErrReadOnly
	}
	err := b.m.Remove(ctx, name)
	if errors.Is(err, monarch.ErrNotWritable) {
		// Distinguish "no such file" (ErrNotExist on the wire) from
		// "that's the dataset" (read-only on the wire).
		if _, serr := b.m.Stat(name); serr != nil {
			return fmt.Errorf("%w: %s", storage.ErrNotExist, name)
		}
	}
	return writeErr(err)
}

// writeErr maps the middleware's write sentinels onto the storage
// sentinels the wire protocol can carry: a dataset file is read-only
// from a peer's point of view, not an internal error.
func writeErr(err error) error {
	if errors.Is(err, monarch.ErrNotWritable) {
		return fmt.Errorf("%w: %v", storage.ErrReadOnly, err)
	}
	return err
}
func (b *monarchBackend) Capacity() int64 { return b.tier0.Capacity() }
func (b *monarchBackend) Used() int64     { return b.tier0.Used() }

// serveTenants runs the multi-tenant daemon: a MONARCH instance
// managing -root as the cache tier over the read-only -pfs dataset,
// heat-driven eviction on, -jobs shares enforced, served over the
// peernet wire protocol. A wall-clock ticker stands in for the
// training loop's MarkEpoch calls to drive heat decay.
func serveTenants(cfg serveConfig) error {
	tenants, err := parseJobs(cfg.jobs)
	if err != nil {
		return err
	}
	tier0, err := storage.NewOSFS("ssd", cfg.root, cfg.quota)
	if err != nil {
		return fmt.Errorf("-root: %w", err)
	}
	pfs, err := storage.NewOSFS("pfs", cfg.pfs, 0)
	if err != nil {
		return fmt.Errorf("-pfs: %w", err)
	}
	mcfg := monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(4),
		FullFileFetch: true,
		Eviction:      monarch.NewHeatPolicy(monarch.HeatConfig{}),
		JobOf:         monarch.JobFromPath,
		Tenants:       tenants,
	}
	if cfg.write {
		// Remote WRITE/REMOVE flow through the write path. With a WAL
		// the whole namespace acks write-back (tier 0 + journal, async
		// flush); without one, write-through keeps acks durable on the
		// PFS at full PFS latency.
		mcfg.Write = monarch.WriteConfig{Enabled: true, JournalPath: cfg.journal}
		if cfg.journal != "" {
			mcfg.Write.Durability = func(string) monarch.Durability { return monarch.WriteBack }
		}
	}
	m, err := monarch.New(mcfg)
	if err != nil {
		return err
	}
	defer m.Close()
	if err := m.Init(context.Background()); err != nil {
		return fmt.Errorf("building namespace from %s: %w", cfg.pfs, err)
	}

	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend:    &monarchBackend{m: m, tier0: tier0, writable: cfg.write},
		AllowWrite: cfg.write,
		Stats: func() (peernet.NodeStats, error) {
			ns := peernet.NodeStats{Node: "monarch-serve", Metrics: m.Registry().Snapshot()}
			if jobs := m.Stats().Jobs; len(jobs) > 0 {
				ns.Jobs = make(map[string]peernet.JobCounters, len(jobs))
				for job, js := range jobs {
					ns.Jobs[job] = peernet.JobCounters{
						ReadsServed: js.ReadsServed,
						BytesServed: js.BytesServed,
						Hits:        js.Hits,
						Evictions:   js.Evictions,
					}
				}
			}
			return ns, nil
		},
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	mode := "read-only"
	if cfg.write {
		mode = "read-write (write-through)"
		if cfg.journal != "" {
			mode = "read-write (write-back, WAL " + cfg.journal + ")"
		}
	}
	fmt.Printf("monarch-serve: multi-tenant cache %s (quota %d, %s) over %s on %s, %d files\n",
		cfg.root, cfg.quota, mode, cfg.pfs, ln.Addr(), m.NumFiles())
	for _, tc := range tenants {
		fmt.Printf("monarch-serve:   tenant %s guaranteed %.0f%% of the cache tier\n", tc.Job, tc.Share*100)
	}

	if cfg.epochEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(cfg.epochEvery)
			defer tick.Stop()
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					m.MarkEpoch(n)
				}
			}
		}()
	}

	if cfg.metrics != "" {
		// The middleware registry already carries the per-job fairness
		// series (monarch_job_read_ops_total, monarch_job_tier_used_bytes,
		// monarch_job_tier_quota_bytes, ...); serve it as-is.
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			return err
		}
		fmt.Printf("monarch-serve: metrics on http://%s/metrics\n", mln.Addr())
		handler := m.Registry().HandlerWith(obs.HandlerOpts{
			Health: m.Healthz,
			Routes: map[string]http.Handler{"/debug/gossip": gossipHandler(nil)},
		})
		go func() { _ = http.Serve(mln, handler) }()
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("monarch-serve: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}

// runSelftest spins up a 2-node cluster over loopback TCP — each node a
// real peernet server plus a MONARCH instance routing non-owned reads
// through its sibling — and verifies the peer network end to end:
// sibling caches must serve reads, the fleet aggregator's merged
// counters must equal the sum of every node's registry, and at least
// one cross-node read must stitch (the client span in the reader's
// trace joined to the serve span in the owner's by the request ID the
// frame carried).
func runSelftest() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "monarch-serve selftest: FAIL: "+format+"\n", args...)
		return 1
	}
	traceDir, err := os.MkdirTemp("", "monarch-selftest-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(traceDir)
	res, err := experiments.RunPeerLoopback(experiments.PeerRunConfig{
		Nodes: 2, Files: 24, FileSize: 4096, Epochs: 3,
		Mode:     experiments.ShardReshuffled,
		UsePeers: true,
		Seed:     42,
		TraceDir: traceDir,
	})
	if err != nil {
		return fail("%v", err)
	}
	hits := res.PeerHits()
	var misses, placements int64
	for _, s := range res.Stats {
		misses += s.PeerMisses
		placements += s.Placements
	}
	fmt.Printf("monarch-serve selftest: 2 nodes, 24 shards, 3 reshuffled epochs over loopback TCP\n")
	fmt.Printf("  peer hits %d, peer misses %d, placements %d, PFS data ops %d\n",
		hits, misses, placements, res.PFSOps)
	if hits == 0 {
		return fail("no reads were served by the sibling cache")
	}

	// Fleet aggregation: the merged view polled over the wire (STATS
	// frames through node 0's clients) must agree exactly with the
	// per-node registries it was built from, and with the run's own
	// measured counters.
	if res.Fleet == nil {
		return fail("no fleet snapshot was aggregated")
	}
	if len(res.Fleet.Nodes) != 2 || len(res.Fleet.Unreachable) != 0 {
		return fail("aggregator reached %d/2 nodes (unreachable: %v)",
			len(res.Fleet.Nodes), res.Fleet.Unreachable)
	}
	fleetHits, _ := res.Fleet.Fleet.Int("monarch_peer_hits_total")
	var nodeHits int64
	for _, ns := range res.Fleet.Nodes {
		v, _ := ns.Metrics.Int("monarch_peer_hits_total")
		nodeHits += v
	}
	fmt.Printf("  fleet peer-hit total %d (per-node registries sum to %d, middleware counted %d)\n",
		fleetHits, nodeHits, hits)
	if fleetHits != nodeHits || fleetHits != hits {
		return fail("fleet peer-hit total %d != per-node sum %d / counters %d", fleetHits, nodeHits, hits)
	}
	fleetPFS := sumPFSBackendOps(res.Fleet.Fleet)
	var nodePFS int64
	for _, ns := range res.Fleet.Nodes {
		nodePFS += sumPFSBackendOps(ns.Metrics)
	}
	fmt.Printf("  fleet PFS data-op total %d (per-node registries sum to %d, PFS measured %d)\n",
		fleetPFS, nodePFS, res.PFSOps)
	if fleetPFS != nodePFS || fleetPFS != res.PFSOps {
		return fail("fleet PFS ops %d != per-node sum %d / measured %d", fleetPFS, nodePFS, res.PFSOps)
	}

	// Cross-node correlation: every node recorded a trace; peer reads
	// in one must stitch to serve events in the other.
	traces := make(map[string]*trace.Trace, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("node%d", i)
		t, err := trace.ReadFile(filepath.Join(traceDir, name+".bin"))
		if err != nil {
			return fail("reading %s trace: %v", name, err)
		}
		traces[name] = t
	}
	c := analyze.Correlate(traces)
	fmt.Printf("  stitched %d cross-node read(s), %d unmatched read(s), %d unmatched serve(s)\n",
		len(c.Pairs), c.UnmatchedReads, c.UnmatchedServes)
	if len(c.Pairs) == 0 {
		return fail("no client/serve span pair shared a request ID")
	}
	p := c.Pairs[0]
	fmt.Printf("  e.g. req=%016x %s: %s(%s) ⇐ %s\n",
		p.Req, p.Client.File, p.Client.Node, p.Client.Class, p.Serves[0].Node)
	fmt.Println("monarch-serve selftest: OK")
	return 0
}

// sumPFSBackendOps totals the data operations (reads + writes) the
// shared PFS backend answered, from monarch_backend_ops_total — the
// counter the middleware's source-level Counting wrapper exports.
func sumPFSBackendOps(s obs.Snapshot) int64 {
	var sum float64
	for _, p := range s.Metrics {
		if p.Name != "monarch_backend_ops_total" || p.Value == nil {
			continue
		}
		if p.Labels["backend"] != "lustre" {
			continue
		}
		if op := p.Labels["op"]; op == "read" || op == "write" {
			sum += *p.Value
		}
	}
	return int64(sum)
}

// runChaos is the churn drill behind `make chaos-smoke`: a 6-node
// replicated cluster (R=2) with gossip membership, one node's serving
// socket killed after epoch 2 and rejoined after epoch 4. Replication
// must absorb the kill — zero PFS fallbacks, zero peer-stage errors —
// both convergence times must land, and the run must not leak
// goroutines (counted directly; no external leak-check dependency).
func runChaos() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "monarch-serve chaos: FAIL: "+format+"\n", args...)
		return 1
	}
	before := runtime.NumGoroutine()
	res, err := experiments.RunPeerLoopback(experiments.PeerRunConfig{
		Nodes: 6, Files: 48, FileSize: 2048, Epochs: 6,
		Mode:       experiments.ShardReshuffled,
		UsePeers:   true,
		Replicas:   2,
		Membership: true,
		Seed:       23,
		KillNode:   2, KillAfterEpoch: 2, RejoinAfterEpoch: 4,
	})
	if err != nil {
		return fail("%v", err)
	}
	fmt.Printf("monarch-serve chaos: 6 nodes R=2, kill node 2 after epoch 2, rejoin after epoch 4\n")
	fmt.Printf("  peer hits %d, fallbacks %d, peer-stage errors %d, PFS data ops %d\n",
		res.PeerHits(), res.Fallbacks(), res.PeerStageErrors, res.PFSOps)
	fmt.Printf("  dead converged in %v, rejoin converged in %v\n",
		res.KillConvergence, res.RejoinConvergence)
	if res.PeerHits() == 0 {
		return fail("no reads were served by sibling caches")
	}
	if res.Fallbacks() != 0 {
		return fail("%d PFS fallbacks; replication must absorb a single kill", res.Fallbacks())
	}
	if res.PeerStageErrors != 0 {
		return fail("%d peer-stage errors surfaced through the replica set", res.PeerStageErrors)
	}
	if res.KillConvergence <= 0 {
		return fail("views never converged on the dead peer (%v)", res.KillConvergence)
	}
	if res.RejoinConvergence <= 0 {
		return fail("views never converged on the rejoin (%v)", res.RejoinConvergence)
	}

	// Goroutine-leak check: servers, heartbeaters and per-connection
	// handlers must all be gone. Conn teardown is asynchronous, so poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			fmt.Printf("  goroutines %d before, %d after\n", before, g)
			break
		}
		if time.Now().After(deadline) {
			return fail("goroutine leak: %d before the run, %d still alive 5s after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("monarch-serve chaos: OK")
	return 0
}

// Crash-smoke geometry, shared by the parent and the re-exec'd child.
const (
	crashFiles     = 4
	crashFileSize  = 256 << 10
	crashChunk     = 4 << 10
	crashKillAfter = 64 // ACKed chunks the parent waits for before SIGKILL
)

func crashName(i int) string { return fmt.Sprintf("ckpt/shard-%d", i) }

// crashPattern is the byte filling chunk k of file i. It depends on
// the position alone, so overwrites are idempotent and the parent can
// verify any acked chunk without knowing how far past its last-read
// ACK the child got before the kill landed.
func crashPattern(i int, k int64) byte { return byte((i*53+int(k)*17)%251 + 1) }

// slowFlushFS delays whole-file writes — the flusher's landing op — so
// a SIGKILLed burst reliably dies with acked-but-unflushed bytes,
// forcing the reopen to actually replay the WAL instead of finding an
// already-clean PFS.
type slowFlushFS struct {
	monarch.Backend
	delay time.Duration
}

func (s *slowFlushFS) WriteFile(ctx context.Context, name string, data []byte) error {
	time.Sleep(s.delay)
	return s.Backend.WriteFile(ctx, name, data)
}

// Allocate and WriteAt forward undelayed: the wrapper must keep the
// RangeWriter surface the write path requires of the source level, but
// only the flusher's whole-file landing op needs slowing.
func (s *slowFlushFS) Allocate(ctx context.Context, name string, size int64) error {
	rw, ok := s.Backend.(monarch.RangeWriter)
	if !ok {
		return errors.ErrUnsupported
	}
	return rw.Allocate(ctx, name, size)
}

func (s *slowFlushFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	rw, ok := s.Backend.(monarch.RangeWriter)
	if !ok {
		return 0, errors.ErrUnsupported
	}
	return rw.WriteAt(ctx, name, p, off)
}

// crashStack opens the middleware over the smoke directory's scratch
// tier-0/PFS pair with journaled write-back on. The child slows the
// flusher; the verifying parent does not.
func crashStack(dir string, slow bool) (*monarch.Monarch, error) {
	tier0, err := monarch.NewOSFS("ssd", filepath.Join(dir, "tier0"), 0)
	if err != nil {
		return nil, err
	}
	var pfs monarch.Backend
	pfs, err = monarch.NewOSFS("lustre", filepath.Join(dir, "pfs"), 0)
	if err != nil {
		return nil, err
	}
	if slow {
		pfs = &slowFlushFS{Backend: pfs, delay: 50 * time.Millisecond}
	}
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(2),
		FullFileFetch: true,
		Write: monarch.WriteConfig{
			Enabled:      true,
			Durability:   func(string) monarch.Durability { return monarch.WriteBack },
			JournalPath:  filepath.Join(dir, "wal.mj"),
			FlushWorkers: 1,
		},
	})
	if err != nil {
		return nil, err
	}
	if err := m.Init(context.Background()); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// runCrashChild is the burst half of -crashsmoke: journaled write-back
// chunks as fast as they ack, one "ACK seq file off len" line per
// landed write. It runs until the parent kills it.
func runCrashChild(dir string) int {
	ctx := context.Background()
	m, err := crashStack(dir, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke child:", err)
		return 1
	}
	for i := 0; i < crashFiles; i++ {
		if err := m.Create(ctx, crashName(i), crashFileSize); err != nil {
			fmt.Fprintln(os.Stderr, "crashsmoke child:", err)
			return 1
		}
	}
	buf := make([]byte, crashChunk)
	for seq := 0; ; seq++ {
		i := seq % crashFiles
		off := (int64(seq/crashFiles) * crashChunk) % crashFileSize
		p := crashPattern(i, off/crashChunk)
		for j := range buf {
			buf[j] = p
		}
		if _, err := m.WriteAt(ctx, crashName(i), buf, off); err != nil {
			fmt.Fprintln(os.Stderr, "crashsmoke child:", err)
			return 1
		}
		// One unbuffered line per acked write: once the parent has read
		// it, the bytes are covered by the durability contract.
		fmt.Printf("ACK %d %s %d %d\n", seq, crashName(i), off, len(buf))
	}
}

// runCrashSmoke drives the write-back burst → SIGKILL → reopen →
// verify drill end to end over real directories and a real process
// kill: every write the child acked before dying must read back
// byte-identical after WAL replay.
func runCrashSmoke() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "monarch-serve crashsmoke: FAIL: "+format+"\n", args...)
		return 1
	}
	dir, err := os.MkdirTemp("", "monarch-crashsmoke-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir)
	for _, sub := range []string{"tier0", "pfs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return fail("%v", err)
		}
	}
	exe, err := os.Executable()
	if err != nil {
		return fail("%v", err)
	}
	child := exec.Command(exe, "-crashsmoke-child", dir)
	child.Stderr = os.Stderr
	out, err := child.StdoutPipe()
	if err != nil {
		return fail("%v", err)
	}
	if err := child.Start(); err != nil {
		return fail("starting child: %v", err)
	}
	type ack struct {
		file string
		off  int64
	}
	var acks []ack
	sc := bufio.NewScanner(out)
	for len(acks) < crashKillAfter && sc.Scan() {
		var seq, size int
		var name string
		var off int64
		if _, err := fmt.Sscanf(sc.Text(), "ACK %d %s %d %d", &seq, &name, &off, &size); err != nil {
			continue
		}
		acks = append(acks, ack{file: name, off: off})
	}
	if len(acks) < crashKillAfter {
		_ = child.Process.Kill()
		_ = child.Wait()
		return fail("child produced %d/%d ACKs before exiting", len(acks), crashKillAfter)
	}
	// kill -9 mid-burst: no shutdown hook runs, the journal is all
	// that stands between the acked bytes and the void.
	if err := child.Process.Kill(); err != nil {
		return fail("killing child: %v", err)
	}
	_ = child.Wait()
	fmt.Printf("monarch-serve crashsmoke: killed the burst after %d acked chunks (%d KiB)\n",
		len(acks), len(acks)*crashChunk/1024)

	m, err := crashStack(dir, false)
	if err != nil {
		return fail("reopen: %v", err)
	}
	defer m.Close()
	st := m.Stats()
	if st.RecoveredFiles == 0 {
		return fail("reopen recovered nothing — the burst flushed everything before the kill, no WAL replay was exercised")
	}
	ctx := context.Background()
	buf := make([]byte, crashChunk)
	for _, a := range acks {
		var i int
		if _, err := fmt.Sscanf(a.file, "ckpt/shard-%d", &i); err != nil {
			return fail("unparseable ACK file %q", a.file)
		}
		if _, err := m.ReadAt(ctx, a.file, buf, a.off); err != nil {
			return fail("reading back %s@%d: %v", a.file, a.off, err)
		}
		want := crashPattern(i, a.off/crashChunk)
		for j, b := range buf {
			if b != want {
				return fail("acked byte lost: %s@%d[%d] = %#x, want %#x",
					a.file, a.off, j, b, want)
			}
		}
	}
	fmt.Printf("monarch-serve crashsmoke: recovered %d file(s) from the WAL, all %d acked chunks byte-identical\n",
		st.RecoveredFiles, len(acks))
	fmt.Println("monarch-serve crashsmoke: OK")
	return 0
}
