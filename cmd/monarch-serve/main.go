// Command monarch-serve exposes a node's tier-0 cache directory to
// sibling nodes over the peernet wire protocol, so their MONARCH
// instances can slot this node's cache into their hierarchies as a
// peer tier.
//
// Usage:
//
//	monarch-serve -root /mnt/ssd/monarch              # serve a cache dir
//	monarch-serve -root DIR -addr :9077 -quota 64GiB-ish-bytes
//	monarch-serve -root DIR -write                    # accept remote writes
//	monarch-serve -root DIR -metrics :9078            # capacity gauges + pprof
//	monarch-serve -root DIR -self node0 \
//	    -peers node1=host1:9077,node2=host2:9077     # gossip membership
//	monarch-serve -root DIR -quota 64000000000 \
//	    -pfs /lustre/datasets -jobs jobA=0.5,jobB=0.3 # multi-tenant cache
//	monarch-serve -selftest                           # 2-node loopback smoke
//	monarch-serve -chaos                              # kill/rejoin chaos smoke
//
// The server is read-only by default: peers may READ/STAT/LIST/PING but
// never mutate this node's cache (placement stays a local decision).
//
// With -jobs the daemon becomes a multi-tenant MONARCH node: -root is
// managed as the SSD cache tier over the read-only -pfs dataset
// directory, served through a full middleware instance with the
// heat-driven eviction engine on. Every file's first path segment names
// its job ("jobA/shard-0003" belongs to jobA); -jobs declares each
// job's guaranteed share of the -quota (shares in [0,1], sum <= 1),
// with unused capacity borrowable by any job until its owner reclaims
// it. Reads arriving over the wire heat files, drive placement and
// eviction, and move per-job fairness counters
// (monarch_job_read_ops_total, monarch_job_tier_used_bytes, ...)
// exported on -metrics. -epoch-every sets the wall-clock stand-in for
// the training loop's epoch marks, which drive heat decay. Tenant mode
// requires a finite -quota (shares of an unlimited tier are
// meaningless) and is incompatible with -write (the cache's contents
// are the middleware's placement decisions, not remote state).
//
// With -self and -peers the node joins the gossip membership: it
// heartbeats every sibling over the same wire protocol (views ride
// PING frames), answers inbound heartbeats with its own view, logs
// liveness transitions, and exposes per-peer state gauges on -metrics.
// -replicas records the replica-set width R the cluster's rings run
// with (consumers derive ownership from OwnersOf(name, R); every node
// must agree on R).
//
// -selftest runs a self-contained two-node cluster over loopback TCP —
// real servers, a reshuffled sharded job — and exits non-zero unless
// sibling caches actually served reads; `make peer-smoke` wires it into
// the test gauntlet. -chaos runs the churn drill: a 6-node replicated
// cluster with gossip membership, one node killed mid-run and rejoined
// two epochs later, exiting non-zero unless the kill cost zero PFS
// fallbacks, both convergences landed, and no goroutines leaked;
// `make chaos-smoke` wires it in.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"monarch"

	"monarch/internal/experiments"
	"monarch/internal/obs"
	"monarch/internal/obs/cluster"
	"monarch/internal/peernet"
	"monarch/internal/storage"
	"monarch/internal/trace"
	"monarch/internal/trace/analyze"
)

func main() {
	var (
		addr     = flag.String("addr", ":9077", "listen address for the peer wire protocol")
		root     = flag.String("root", "", "cache directory to serve (required unless -selftest/-chaos)")
		quota    = flag.Int64("quota", 0, "capacity the store reports, in bytes (0 = unlimited)")
		write    = flag.Bool("write", false, "accept remote WRITE/REMOVE (default read-only)")
		metrics  = flag.String("metrics", "", "optional address serving /metrics for this store")
		selftest = flag.Bool("selftest", false, "run a 2-node loopback smoke test and exit")
		chaos    = flag.Bool("chaos", false, "run the kill/rejoin chaos smoke test and exit")

		self     = flag.String("self", "", "this node's ring ID (enables gossip membership with -peers)")
		peers    = flag.String("peers", "", "comma-separated sibling servers, id=host:port each")
		replicas = flag.Int("replicas", 1, "replica-set width R the cluster's ownership rings use")
		hbEvery  = flag.Duration("heartbeat", 250*time.Millisecond, "gossip heartbeat interval")
		suspect  = flag.Duration("suspect-after", time.Second, "silence before a peer turns Suspect")
		dead     = flag.Duration("dead-after", 3*time.Second, "silence before a peer turns Dead")

		pfs     = flag.String("pfs", "", "read-only dataset directory (enables multi-tenant mode with -jobs)")
		jobs    = flag.String("jobs", "", "per-job quota shares, job=share each (e.g. jobA=0.5,jobB=0.3)")
		epochEv = flag.Duration("epoch-every", time.Minute, "wall-clock epoch length driving heat decay in tenant mode (0 = never decay)")
	)
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest())
	}
	if *chaos {
		os.Exit(runChaos())
	}
	if *root == "" {
		fmt.Fprintln(os.Stderr, "monarch-serve: -root is required (or use -selftest/-chaos)")
		os.Exit(2)
	}
	cfg := serveConfig{
		addr: *addr, root: *root, quota: *quota, write: *write, metrics: *metrics,
		self: *self, peers: *peers, replicas: *replicas,
		heartbeat: *hbEvery, suspectAfter: *suspect, deadAfter: *dead,
		pfs: *pfs, jobs: *jobs, epochEvery: *epochEv,
	}
	if err := serve(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "monarch-serve:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	addr, root              string
	quota                   int64
	write                   bool
	metrics                 string
	self, peers             string
	replicas                int
	heartbeat               time.Duration
	suspectAfter, deadAfter time.Duration
	pfs, jobs               string
	epochEvery              time.Duration
}

// validate rejects flag combinations before any resource is touched,
// so misconfigurations fail fast with one clear message.
func (cfg serveConfig) validate() error {
	if cfg.replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", cfg.replicas)
	}
	if (cfg.self == "") != (cfg.peers == "") {
		return fmt.Errorf("-self and -peers must be set together")
	}
	if cfg.jobs != "" {
		if cfg.pfs == "" {
			return fmt.Errorf("-jobs needs -pfs: the tenant cache is placed from a dataset directory")
		}
		if cfg.quota <= 0 {
			return fmt.Errorf("conflicting -quota: -jobs declares shares of the cache tier, so -quota must be a positive byte count (got %d)", cfg.quota)
		}
		if cfg.write {
			return fmt.Errorf("-write conflicts with -jobs: a tenant cache holds placement decisions, not remote writes")
		}
		if _, err := parseJobs(cfg.jobs); err != nil {
			return err
		}
	} else if cfg.pfs != "" {
		return fmt.Errorf("-pfs needs -jobs: declare at least one tenant share")
	}
	return nil
}

// parseJobs decodes the -jobs flag: comma-separated job=share, each
// share a fraction of the cache tier in [0,1]. Range, duplicate and
// sum-of-shares validation happens in core when the middleware is
// assembled; this only parses.
func parseJobs(spec string) ([]monarch.TenantConfig, error) {
	var tenants []monarch.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		job, val, ok := strings.Cut(part, "=")
		if !ok || job == "" || val == "" {
			return nil, fmt.Errorf("bad -jobs entry %q (want job=share)", part)
		}
		share, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -jobs share %q: %v", part, err)
		}
		tenants = append(tenants, monarch.TenantConfig{Job: job, Share: share})
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("-jobs is empty (want job=share,...)")
	}
	return tenants, nil
}

// parsePeers decodes the -peers flag: comma-separated id=host:port.
func parsePeers(spec string) (ids []string, addrs map[string]string, err error) {
	addrs = map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		if _, dup := addrs[id]; dup {
			return nil, nil, fmt.Errorf("duplicate peer id %q in -peers", id)
		}
		ids = append(ids, id)
		addrs[id] = addr
	}
	return ids, addrs, nil
}

// gossipEntries renders a membership view as STATS-frame gossip
// entries, sorted by node for deterministic output. Nil membership
// (no -self/-peers) yields nil.
func gossipEntries(mem *peernet.Membership) []peernet.GossipEntry {
	if mem == nil {
		return nil
	}
	snap := mem.Snapshot()
	entries := make([]peernet.GossipEntry, 0, len(snap))
	for peer, st := range snap {
		entries = append(entries, peernet.GossipEntry{Node: peer, State: st.String()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	return entries
}

// gossipHandler serves /debug/gossip: this node's live membership view
// as a JSON object of peer -> state. Without gossip it reports so
// instead of 404ing, so operators can tell "not enabled" from "wrong
// port".
func gossipHandler(mem *peernet.Membership) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if mem == nil {
			fmt.Fprintln(w, `{"gossip":"disabled"}`)
			return
		}
		view := map[string]string{}
		for peer, st := range mem.Snapshot() {
			view[peer] = st.String()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"self": mem.Self(), "peers": view})
	})
}

func serve(cfg serveConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.jobs != "" {
		return serveTenants(cfg)
	}
	store, err := storage.NewOSFS("tier0", cfg.root, cfg.quota)
	if err != nil {
		return err
	}

	// Gossip membership: requires both -self and -peers.
	var mem *peernet.Membership
	var hb *peernet.Heartbeater
	var peerIDs []string
	clients := map[string]*peernet.Client{}
	if cfg.self != "" {
		ids, addrs, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		peerIDs = ids
		mem, err = peernet.NewMembership(peernet.MembershipConfig{
			Self:         cfg.self,
			Peers:        ids,
			SuspectAfter: cfg.suspectAfter,
			DeadAfter:    cfg.deadAfter,
			OnChange: func(peer string, from, to peernet.PeerState) {
				fmt.Printf("monarch-serve: peer %s %s -> %s\n", peer, from, to)
			},
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:" + id,
				Dial: peernet.TCPDialer(addrs[id], cfg.heartbeat),
			})
			if err != nil {
				return err
			}
			defer c.Close()
			clients[id] = c
		}
		hb, err = peernet.NewHeartbeater(mem, clients, cfg.heartbeat)
		if err != nil {
			return err
		}
	}

	// The registry exists whether or not -metrics serves it: the STATS
	// frame answers with its snapshot either way, so a fleet aggregator
	// on any sibling can poll this node.
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, time.Now())
	reg.GaugeFunc("monarch_serve_capacity_bytes",
		"Capacity the served store reports (0 = unlimited).",
		func() float64 { return float64(store.Capacity()) })
	reg.GaugeFunc("monarch_serve_used_bytes",
		"Bytes currently held by the served store.",
		func() float64 { return float64(store.Used()) })
	reg.GaugeFunc("monarch_serve_replicas",
		"Replica-set width R the cluster's ownership rings run with.",
		func() float64 { return float64(cfg.replicas) })
	if mem != nil {
		mem.Instrument(reg)
	}
	nodeName := cfg.self
	if nodeName == "" {
		nodeName = "monarch-serve"
	}
	statsFn := func() (peernet.NodeStats, error) {
		ns := peernet.NodeStats{Node: nodeName, Metrics: reg.Snapshot()}
		ns.Gossip = gossipEntries(mem)
		return ns, nil
	}

	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend:    store,
		AllowWrite: cfg.write,
		Membership: mem,
		Stats:      statsFn,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	mode := "read-only"
	if cfg.write {
		mode = "read-write"
	}
	fmt.Printf("monarch-serve: serving %s (%s) on %s\n", cfg.root, mode, ln.Addr())
	if mem != nil {
		fmt.Printf("monarch-serve: gossip as %s with %d peers, R=%d, heartbeat %v (suspect %v, dead %v)\n",
			cfg.self, len(mem.Snapshot()), cfg.replicas, cfg.heartbeat, cfg.suspectAfter, cfg.deadAfter)
		hb.Start()
		defer hb.Stop()
	}

	if cfg.metrics != "" {
		routes := map[string]http.Handler{
			"/debug/gossip": gossipHandler(mem),
		}
		if mem != nil {
			// The gossip clients double as fleet-stats sources: the
			// aggregator polls every sibling's STATS frame per scrape and
			// serves the merged view from this node.
			var sources []cluster.Source
			for _, id := range peerIDs {
				sources = append(sources, cluster.Source{Node: id, Client: clients[id]})
			}
			agg := cluster.New(cluster.Config{Self: statsFn, Sources: sources})
			for pattern, h := range agg.Routes() {
				routes[pattern] = h
			}
		}
		handler := reg.HandlerWith(obs.HandlerOpts{
			Health: func() obs.Health {
				h := obs.Health{}
				if mem != nil {
					h.Gossip = map[string]string{}
					for peer, st := range mem.Snapshot() {
						h.Gossip[peer] = st.String()
					}
				}
				return h
			},
			Routes: routes,
		})
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			return err
		}
		fmt.Printf("monarch-serve: metrics on http://%s/metrics\n", mln.Addr())
		go func() { _ = http.Serve(mln, handler) }()
	}

	// Serve until SIGINT/SIGTERM, then close connections and drain.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("monarch-serve: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}

// monarchBackend adapts a middleware instance to the storage.Backend
// surface the peernet server speaks, so remote reads flow through the
// full MONARCH read path — heating files, triggering placements and
// evictions, moving per-job counters — instead of hitting the cache
// directory raw. The namespace is read-only by construction.
type monarchBackend struct {
	m     *monarch.Monarch
	tier0 monarch.Backend
}

func (b *monarchBackend) Name() string { return "tenant" }
func (b *monarchBackend) List(ctx context.Context) ([]storage.FileInfo, error) {
	return b.m.Files(), nil
}
func (b *monarchBackend) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	return b.m.Stat(name)
}
func (b *monarchBackend) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return b.m.ReadAt(ctx, name, p, off)
}
func (b *monarchBackend) ReadFile(ctx context.Context, name string) ([]byte, error) {
	return b.m.ReadFull(ctx, name)
}
func (b *monarchBackend) WriteFile(ctx context.Context, name string, data []byte) error {
	return storage.ErrReadOnly
}
func (b *monarchBackend) Remove(ctx context.Context, name string) error {
	return storage.ErrReadOnly
}
func (b *monarchBackend) Capacity() int64 { return b.tier0.Capacity() }
func (b *monarchBackend) Used() int64     { return b.tier0.Used() }

// serveTenants runs the multi-tenant daemon: a MONARCH instance
// managing -root as the cache tier over the read-only -pfs dataset,
// heat-driven eviction on, -jobs shares enforced, served over the
// peernet wire protocol. A wall-clock ticker stands in for the
// training loop's MarkEpoch calls to drive heat decay.
func serveTenants(cfg serveConfig) error {
	tenants, err := parseJobs(cfg.jobs)
	if err != nil {
		return err
	}
	tier0, err := storage.NewOSFS("ssd", cfg.root, cfg.quota)
	if err != nil {
		return fmt.Errorf("-root: %w", err)
	}
	pfs, err := storage.NewOSFS("pfs", cfg.pfs, 0)
	if err != nil {
		return fmt.Errorf("-pfs: %w", err)
	}
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(4),
		FullFileFetch: true,
		Eviction:      monarch.NewHeatPolicy(monarch.HeatConfig{}),
		JobOf:         monarch.JobFromPath,
		Tenants:       tenants,
	})
	if err != nil {
		return err
	}
	defer m.Close()
	if err := m.Init(context.Background()); err != nil {
		return fmt.Errorf("building namespace from %s: %w", cfg.pfs, err)
	}

	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend: &monarchBackend{m: m, tier0: tier0},
		Stats: func() (peernet.NodeStats, error) {
			ns := peernet.NodeStats{Node: "monarch-serve", Metrics: m.Registry().Snapshot()}
			if jobs := m.Stats().Jobs; len(jobs) > 0 {
				ns.Jobs = make(map[string]peernet.JobCounters, len(jobs))
				for job, js := range jobs {
					ns.Jobs[job] = peernet.JobCounters{
						ReadsServed: js.ReadsServed,
						BytesServed: js.BytesServed,
						Hits:        js.Hits,
						Evictions:   js.Evictions,
					}
				}
			}
			return ns, nil
		},
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("monarch-serve: multi-tenant cache %s (quota %d) over %s on %s, %d files\n",
		cfg.root, cfg.quota, cfg.pfs, ln.Addr(), m.NumFiles())
	for _, tc := range tenants {
		fmt.Printf("monarch-serve:   tenant %s guaranteed %.0f%% of the cache tier\n", tc.Job, tc.Share*100)
	}

	if cfg.epochEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(cfg.epochEvery)
			defer tick.Stop()
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					m.MarkEpoch(n)
				}
			}
		}()
	}

	if cfg.metrics != "" {
		// The middleware registry already carries the per-job fairness
		// series (monarch_job_read_ops_total, monarch_job_tier_used_bytes,
		// monarch_job_tier_quota_bytes, ...); serve it as-is.
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			return err
		}
		fmt.Printf("monarch-serve: metrics on http://%s/metrics\n", mln.Addr())
		handler := m.Registry().HandlerWith(obs.HandlerOpts{
			Health: m.Healthz,
			Routes: map[string]http.Handler{"/debug/gossip": gossipHandler(nil)},
		})
		go func() { _ = http.Serve(mln, handler) }()
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("monarch-serve: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}

// runSelftest spins up a 2-node cluster over loopback TCP — each node a
// real peernet server plus a MONARCH instance routing non-owned reads
// through its sibling — and verifies the peer network end to end:
// sibling caches must serve reads, the fleet aggregator's merged
// counters must equal the sum of every node's registry, and at least
// one cross-node read must stitch (the client span in the reader's
// trace joined to the serve span in the owner's by the request ID the
// frame carried).
func runSelftest() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "monarch-serve selftest: FAIL: "+format+"\n", args...)
		return 1
	}
	traceDir, err := os.MkdirTemp("", "monarch-selftest-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(traceDir)
	res, err := experiments.RunPeerLoopback(experiments.PeerRunConfig{
		Nodes: 2, Files: 24, FileSize: 4096, Epochs: 3,
		Mode:     experiments.ShardReshuffled,
		UsePeers: true,
		Seed:     42,
		TraceDir: traceDir,
	})
	if err != nil {
		return fail("%v", err)
	}
	hits := res.PeerHits()
	var misses, placements int64
	for _, s := range res.Stats {
		misses += s.PeerMisses
		placements += s.Placements
	}
	fmt.Printf("monarch-serve selftest: 2 nodes, 24 shards, 3 reshuffled epochs over loopback TCP\n")
	fmt.Printf("  peer hits %d, peer misses %d, placements %d, PFS data ops %d\n",
		hits, misses, placements, res.PFSOps)
	if hits == 0 {
		return fail("no reads were served by the sibling cache")
	}

	// Fleet aggregation: the merged view polled over the wire (STATS
	// frames through node 0's clients) must agree exactly with the
	// per-node registries it was built from, and with the run's own
	// measured counters.
	if res.Fleet == nil {
		return fail("no fleet snapshot was aggregated")
	}
	if len(res.Fleet.Nodes) != 2 || len(res.Fleet.Unreachable) != 0 {
		return fail("aggregator reached %d/2 nodes (unreachable: %v)",
			len(res.Fleet.Nodes), res.Fleet.Unreachable)
	}
	fleetHits, _ := res.Fleet.Fleet.Int("monarch_peer_hits_total")
	var nodeHits int64
	for _, ns := range res.Fleet.Nodes {
		v, _ := ns.Metrics.Int("monarch_peer_hits_total")
		nodeHits += v
	}
	fmt.Printf("  fleet peer-hit total %d (per-node registries sum to %d, middleware counted %d)\n",
		fleetHits, nodeHits, hits)
	if fleetHits != nodeHits || fleetHits != hits {
		return fail("fleet peer-hit total %d != per-node sum %d / counters %d", fleetHits, nodeHits, hits)
	}
	fleetPFS := sumPFSBackendOps(res.Fleet.Fleet)
	var nodePFS int64
	for _, ns := range res.Fleet.Nodes {
		nodePFS += sumPFSBackendOps(ns.Metrics)
	}
	fmt.Printf("  fleet PFS data-op total %d (per-node registries sum to %d, PFS measured %d)\n",
		fleetPFS, nodePFS, res.PFSOps)
	if fleetPFS != nodePFS || fleetPFS != res.PFSOps {
		return fail("fleet PFS ops %d != per-node sum %d / measured %d", fleetPFS, nodePFS, res.PFSOps)
	}

	// Cross-node correlation: every node recorded a trace; peer reads
	// in one must stitch to serve events in the other.
	traces := make(map[string]*trace.Trace, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("node%d", i)
		t, err := trace.ReadFile(filepath.Join(traceDir, name+".bin"))
		if err != nil {
			return fail("reading %s trace: %v", name, err)
		}
		traces[name] = t
	}
	c := analyze.Correlate(traces)
	fmt.Printf("  stitched %d cross-node read(s), %d unmatched read(s), %d unmatched serve(s)\n",
		len(c.Pairs), c.UnmatchedReads, c.UnmatchedServes)
	if len(c.Pairs) == 0 {
		return fail("no client/serve span pair shared a request ID")
	}
	p := c.Pairs[0]
	fmt.Printf("  e.g. req=%016x %s: %s(%s) ⇐ %s\n",
		p.Req, p.Client.File, p.Client.Node, p.Client.Class, p.Serves[0].Node)
	fmt.Println("monarch-serve selftest: OK")
	return 0
}

// sumPFSBackendOps totals the data operations (reads + writes) the
// shared PFS backend answered, from monarch_backend_ops_total — the
// counter the middleware's source-level Counting wrapper exports.
func sumPFSBackendOps(s obs.Snapshot) int64 {
	var sum float64
	for _, p := range s.Metrics {
		if p.Name != "monarch_backend_ops_total" || p.Value == nil {
			continue
		}
		if p.Labels["backend"] != "lustre" {
			continue
		}
		if op := p.Labels["op"]; op == "read" || op == "write" {
			sum += *p.Value
		}
	}
	return int64(sum)
}

// runChaos is the churn drill behind `make chaos-smoke`: a 6-node
// replicated cluster (R=2) with gossip membership, one node's serving
// socket killed after epoch 2 and rejoined after epoch 4. Replication
// must absorb the kill — zero PFS fallbacks, zero peer-stage errors —
// both convergence times must land, and the run must not leak
// goroutines (counted directly; no external leak-check dependency).
func runChaos() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "monarch-serve chaos: FAIL: "+format+"\n", args...)
		return 1
	}
	before := runtime.NumGoroutine()
	res, err := experiments.RunPeerLoopback(experiments.PeerRunConfig{
		Nodes: 6, Files: 48, FileSize: 2048, Epochs: 6,
		Mode:       experiments.ShardReshuffled,
		UsePeers:   true,
		Replicas:   2,
		Membership: true,
		Seed:       23,
		KillNode:   2, KillAfterEpoch: 2, RejoinAfterEpoch: 4,
	})
	if err != nil {
		return fail("%v", err)
	}
	fmt.Printf("monarch-serve chaos: 6 nodes R=2, kill node 2 after epoch 2, rejoin after epoch 4\n")
	fmt.Printf("  peer hits %d, fallbacks %d, peer-stage errors %d, PFS data ops %d\n",
		res.PeerHits(), res.Fallbacks(), res.PeerStageErrors, res.PFSOps)
	fmt.Printf("  dead converged in %v, rejoin converged in %v\n",
		res.KillConvergence, res.RejoinConvergence)
	if res.PeerHits() == 0 {
		return fail("no reads were served by sibling caches")
	}
	if res.Fallbacks() != 0 {
		return fail("%d PFS fallbacks; replication must absorb a single kill", res.Fallbacks())
	}
	if res.PeerStageErrors != 0 {
		return fail("%d peer-stage errors surfaced through the replica set", res.PeerStageErrors)
	}
	if res.KillConvergence <= 0 {
		return fail("views never converged on the dead peer (%v)", res.KillConvergence)
	}
	if res.RejoinConvergence <= 0 {
		return fail("views never converged on the rejoin (%v)", res.RejoinConvergence)
	}

	// Goroutine-leak check: servers, heartbeaters and per-connection
	// handlers must all be gone. Conn teardown is asynchronous, so poll
	// briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			fmt.Printf("  goroutines %d before, %d after\n", before, g)
			break
		}
		if time.Now().After(deadline) {
			return fail("goroutine leak: %d before the run, %d still alive 5s after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("monarch-serve chaos: OK")
	return 0
}
