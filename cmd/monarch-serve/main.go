// Command monarch-serve exposes a node's tier-0 cache directory to
// sibling nodes over the peernet wire protocol, so their MONARCH
// instances can slot this node's cache into their hierarchies as a
// peer tier.
//
// Usage:
//
//	monarch-serve -root /mnt/ssd/monarch              # serve a cache dir
//	monarch-serve -root DIR -addr :9077 -quota 64GiB-ish-bytes
//	monarch-serve -root DIR -write                    # accept remote writes
//	monarch-serve -root DIR -metrics :9078            # capacity gauges + pprof
//	monarch-serve -selftest                           # 2-node loopback smoke
//
// The server is read-only by default: peers may READ/STAT/LIST/PING but
// never mutate this node's cache (placement stays a local decision).
// -selftest runs a self-contained two-node cluster over loopback TCP —
// real servers, a reshuffled sharded job — and exits non-zero unless
// sibling caches actually served reads; `make peer-smoke` wires it into
// the test gauntlet.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"monarch/internal/experiments"
	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/storage"
)

func main() {
	var (
		addr     = flag.String("addr", ":9077", "listen address for the peer wire protocol")
		root     = flag.String("root", "", "cache directory to serve (required unless -selftest)")
		quota    = flag.Int64("quota", 0, "capacity the store reports, in bytes (0 = unlimited)")
		write    = flag.Bool("write", false, "accept remote WRITE/REMOVE (default read-only)")
		metrics  = flag.String("metrics", "", "optional address serving /metrics for this store")
		selftest = flag.Bool("selftest", false, "run a 2-node loopback smoke test and exit")
	)
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest())
	}
	if *root == "" {
		fmt.Fprintln(os.Stderr, "monarch-serve: -root is required (or use -selftest)")
		os.Exit(2)
	}
	if err := serve(*addr, *root, *quota, *write, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "monarch-serve:", err)
		os.Exit(1)
	}
}

func serve(addr, root string, quota int64, write bool, metricsAddr string) error {
	store, err := storage.NewOSFS("tier0", root, quota)
	if err != nil {
		return err
	}
	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend:    store,
		AllowWrite: write,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mode := "read-only"
	if write {
		mode = "read-write"
	}
	fmt.Printf("monarch-serve: serving %s (%s) on %s\n", root, mode, ln.Addr())

	if metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.GaugeFunc("monarch_serve_capacity_bytes",
			"Capacity the served store reports (0 = unlimited).",
			func() float64 { return float64(store.Capacity()) })
		reg.GaugeFunc("monarch_serve_used_bytes",
			"Bytes currently held by the served store.",
			func() float64 { return float64(store.Used()) })
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("monarch-serve: metrics on http://%s/metrics\n", mln.Addr())
		go func() { _ = http.Serve(mln, reg.Handler()) }()
	}

	// Serve until SIGINT/SIGTERM, then close connections and drain.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Println("monarch-serve: shutting down")
		srv.Close()
	}()
	return srv.Serve(ln)
}

// runSelftest spins up a 2-node cluster over loopback TCP — each node a
// real peernet server plus a MONARCH instance routing non-owned reads
// through its sibling — and verifies the peer network end to end.
func runSelftest() int {
	res, err := experiments.RunPeerLoopback(experiments.PeerRunConfig{
		Nodes: 2, Files: 24, FileSize: 4096, Epochs: 3,
		Mode:     experiments.ShardReshuffled,
		UsePeers: true,
		Seed:     42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "monarch-serve selftest: FAIL:", err)
		return 1
	}
	hits := res.PeerHits()
	var misses, placements int64
	for _, s := range res.Stats {
		misses += s.PeerMisses
		placements += s.Placements
	}
	fmt.Printf("monarch-serve selftest: 2 nodes, 24 shards, 3 reshuffled epochs over loopback TCP\n")
	fmt.Printf("  peer hits %d, peer misses %d, placements %d, PFS data ops %d\n",
		hits, misses, placements, res.PFSOps)
	if hits == 0 {
		fmt.Fprintln(os.Stderr, "monarch-serve selftest: FAIL: no reads were served by the sibling cache")
		return 1
	}
	fmt.Println("monarch-serve selftest: OK")
	return 0
}
