package monarch_test

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"monarch"
)

// Example shows the paper's integration pattern end to end: a two-level
// hierarchy over a read-only source, reads through the middleware, and
// the automatic background promotion of touched files.
func Example() {
	ctx := context.Background()

	// The shared PFS holding the dataset (read-only from the job's view).
	pfs := monarch.NewMemFS("lustre", 0)
	_ = pfs.WriteFile(ctx, "shard-0", bytes.Repeat([]byte{'x'}, 1024))
	pfs.SetReadOnly(true)

	// The node-local fast tier with a quota.
	ssd := monarch.NewMemFS("ssd", 10<<20)

	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{ssd, pfs},
		Pool:          monarch.NewPool(6),
		FullFileFetch: true,
	})
	if err != nil {
		panic(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		panic(err)
	}

	// The framework's pread becomes a middleware ReadAt.
	buf := make([]byte, 256)
	n, _ := m.ReadAt(ctx, "shard-0", buf, 0)
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	lvl, _ := m.LevelOf("shard-0")
	fmt.Printf("read %d bytes; file now on level %d\n", n, lvl)
	// Output: read 256 bytes; file now on level 0
}

// ExampleMonarch_Stats shows the counters the experiments are built on.
func ExampleMonarch_Stats() {
	ctx := context.Background()
	pfs := monarch.NewMemFS("lustre", 0)
	_ = pfs.WriteFile(ctx, "a", make([]byte, 100))
	_ = pfs.WriteFile(ctx, "b", make([]byte, 100))
	pfs.SetReadOnly(true)
	m, _ := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{monarch.NewMemFS("ssd", 0), pfs},
		Pool:          monarch.NewPool(2),
		FullFileFetch: true,
	})
	defer m.Close()
	_ = m.Init(ctx)

	buf := make([]byte, 100)
	_, _ = m.ReadAt(ctx, "a", buf, 0) // epoch 1: served by the PFS
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	_, _ = m.ReadAt(ctx, "a", buf, 0) // epoch 2: served by the SSD

	st := m.Stats()
	fmt.Printf("placements=%d reads[ssd]=%d reads[pfs]=%d\n",
		st.Placements, st.ReadsServed[0], st.ReadsServed[1])
	// Output: placements=1 reads[ssd]=1 reads[pfs]=1
}

// ExampleNewEventLog shows middleware observability.
func ExampleNewEventLog() {
	ctx := context.Background()
	pfs := monarch.NewMemFS("lustre", 0)
	_ = pfs.WriteFile(ctx, "shard", make([]byte, 64))
	pfs.SetReadOnly(true)
	events := monarch.NewEventLog(16)
	m, _ := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{monarch.NewMemFS("ssd", 0), pfs},
		Pool:          monarch.NewPool(1),
		FullFileFetch: true,
		Events:        events,
	})
	defer m.Close()
	_ = m.Init(ctx)
	_, _ = m.ReadAt(ctx, "shard", make([]byte, 64), 0)
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	for _, e := range events.Events() {
		fmt.Println(e.Kind, e.File)
	}
	// Output: placed shard
}
