# MONARCH reproduction — common workflows.

GO ?= go

.PHONY: all build test race vet lint cover bench bench-all bench-obs bench-peer bench-hotpath bench-write trace-smoke peer-smoke chaos-smoke crash-smoke repro repro-full examples fuzz fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored; the target
# runs it when the binary is on PATH (CI installs it) and degrades to
# vet-only locally so `make lint` never needs network access.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The default test run vets first, includes a short-mode race pass over
# the concurrency-heavy packages (so data races in the
# read/placement/fault paths fail fast without the cost of racing the
# full experiment sweep), and finishes with a brief fuzz smoke over the
# committed corpora.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -tags debug ./internal/bufpool/
	$(GO) test -race -short ./internal/core/ ./internal/pool/ ./internal/storage/ ./internal/obs/ ./internal/bufpool/ ./internal/peernet/ ./internal/journal/
	$(MAKE) trace-smoke
	$(MAKE) peer-smoke
	$(MAKE) chaos-smoke
	$(MAKE) crash-smoke
	$(MAKE) fuzz-smoke

# Race the whole module. The package list comes from `go list` at run
# time, so new packages can never silently drift out of race coverage
# the way a hand-maintained list did.
race:
	$(GO) test -race $$($(GO) list ./...)
	$(GO) test -race -tags debug ./internal/bufpool/

# Statement-coverage floor for the invariant-bearing core package; the
# eviction/quota property suite keeps this comfortably above the floor.
COVER_FLOOR_CORE = 90

cover:
	$(GO) test -cover ./internal/... .
	@$(GO) test -coverprofile=.cover-core.out ./internal/core/ >/dev/null
	@total=$$($(GO) tool cover -func=.cover-core.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	rm -f .cover-core.out; \
	echo "internal/core coverage: $$total% (floor $(COVER_FLOOR_CORE)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR_CORE)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "internal/core coverage $$total% fell below the $(COVER_FLOOR_CORE)% floor"; exit 1; }

# Core placement/read benchmarks (whole-file vs chunked), committed as
# a JSON baseline so regressions show up in review.
bench:
	$(GO) test -bench='Placement|ReadAt|Metadata|Init' -benchmem -count=1 ./internal/core/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_chunked.json

# One bench per paper table/figure plus package micro-benchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Observability overhead guard: the instrumented mid-copy read path vs
# its baseline, with the run's metrics snapshot embedded. The budgets
# are documented in DESIGN.md §8/§9: instrumented ≤5% over baseline,
# traced ≤5% over instrumented.
bench-obs:
	MONARCH_METRICS_OUT=$(CURDIR)/.bench-metrics.json \
		$(GO) test -bench='ReadAtMidCopy|ReadAtInstrumented|ReadAtTraced' -benchmem -count=1 ./internal/core/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_obs.json -metrics .bench-metrics.json
	rm -f .bench-metrics.json

# Hot-path fan-in guard: the steady-state read path at pinned 1/8/64
# goroutine fan-in, committed as a JSON baseline so the hot-read-path
# speedup stays measurable in-repo.
bench-hotpath:
	$(GO) test -bench='ReadAtParallel|ReadAtSteadyState' -benchmem -count=1 ./internal/core/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_hotpath.json

# Peer wire-protocol benchmarks over both transports (in-process pipe
# isolates codec cost; loopback TCP adds the kernel socket path),
# committed as a JSON baseline.
bench-peer:
	$(GO) test -bench='PeerRead|PeerStat' -benchmem -count=1 ./internal/peernet/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_peer.json

# Write-path benchmarks: foreground ack latency/throughput for
# write-through vs write-back (journaled and not), committed as a JSON
# baseline so ack-path regressions show up in review.
bench-write:
	$(GO) test -bench='WriteThrough|WriteBack' -benchmem -count=1 ./internal/core/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_write.json

# Peer network smoke: two real servers over loopback TCP, a short
# reshuffled sharded job, non-zero exit unless sibling caches served
# reads.
peer-smoke:
	$(GO) run ./cmd/monarch-serve -selftest

# Write-path crash drill: a journaled write-back burst SIGKILLed
# mid-flight, the stack reopened over the same directories, and every
# acked chunk verified byte-identical after WAL replay. Non-zero exit
# on any lost acked byte — or if nothing was left to recover (the
# drill must actually exercise replay).
crash-smoke:
	$(GO) run ./cmd/monarch-serve -crashsmoke

# Churn drill: 6 replicated nodes with gossip membership, one killed
# mid-run and rejoined two epochs later. Non-zero exit unless the kill
# cost zero PFS fallbacks, both membership convergences landed, and no
# goroutines leaked.
chaos-smoke:
	$(GO) run ./cmd/monarch-serve -chaos

# End-to-end trace pipeline smoke: capture a tiny run, analyze the
# artifact, then replay it faithfully — monarch-bench exits non-zero if
# the replay diverges from the capture's trailer.
trace-smoke:
	$(GO) build ./cmd/monarch-bench ./cmd/monarch-inspect
	mkdir -p .trace-smoke
	$(GO) run ./cmd/monarch-bench -capture .trace-smoke/smoke.bin -scale 0.015625 -epochs 2
	$(GO) run ./cmd/monarch-inspect trace .trace-smoke/smoke.bin
	$(GO) run ./cmd/monarch-bench -replay .trace-smoke/smoke.bin
	$(GO) run ./cmd/monarch-bench -replay .trace-smoke/smoke.bin -replay-mode live
	rm -rf .trace-smoke monarch-bench monarch-inspect

# Regenerate every figure/table at the default reduced scale.
repro:
	$(GO) run ./cmd/monarch-bench

# The paper's full methodology: full-size datasets, 7 runs, 3 epochs.
repro-full:
	$(GO) run ./cmd/monarch-bench -scale 1 -runs 7

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitier
	$(GO) run ./examples/tfpipeline
	$(GO) run ./examples/partialcache
	$(GO) run ./examples/pytorchloader

fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/tfrecord/
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/recordio/
	$(GO) test -fuzz=FuzzReadAt -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzNamespace -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzMetaOracle -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzFrame -fuzztime=30s ./internal/peernet/
	$(GO) test -fuzz=FuzzHeartbeat -fuzztime=30s ./internal/peernet/
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./internal/journal/

# A 10-second pass per fuzz target — enough to replay the committed
# corpus and shake out shallow regressions on every `make test`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=10s ./internal/tfrecord/
	$(GO) test -run='^$$' -fuzz=FuzzReader -fuzztime=10s ./internal/recordio/
	$(GO) test -run='^$$' -fuzz=FuzzReadAt -fuzztime=10s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzNamespace -fuzztime=10s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzMetaOracle -fuzztime=10s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzFrame -fuzztime=10s ./internal/peernet/
	$(GO) test -run='^$$' -fuzz=FuzzReplay -fuzztime=10s ./internal/journal/

clean:
	rm -f test_output.txt bench_output.txt .bench-metrics.json .cover-core.out
