# MONARCH reproduction — common workflows.

GO ?= go

.PHONY: all build test race vet cover bench bench-all repro repro-full examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default test run vets first, then includes a short-mode race pass
# over the concurrency-heavy packages, so data races in the
# read/placement/fault paths fail fast without the cost of racing the
# full experiment sweep.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -short ./internal/core/ ./internal/pool/ ./internal/storage/

race:
	$(GO) test -race ./internal/core/... ./internal/pool/... ./internal/storage/... \
		./internal/sim/... ./internal/simstore/... .

cover:
	$(GO) test -cover ./internal/... .

# Core placement/read benchmarks (whole-file vs chunked), committed as
# a JSON baseline so regressions show up in review.
bench:
	$(GO) test -bench='Placement|ReadAt|Metadata|Init' -benchmem -count=1 ./internal/core/ \
		| $(GO) run ./cmd/monarch-benchjson -o BENCH_chunked.json

# One bench per paper table/figure plus package micro-benchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure/table at the default reduced scale.
repro:
	$(GO) run ./cmd/monarch-bench

# The paper's full methodology: full-size datasets, 7 runs, 3 epochs.
repro-full:
	$(GO) run ./cmd/monarch-bench -scale 1 -runs 7

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitier
	$(GO) run ./examples/tfpipeline
	$(GO) run ./examples/partialcache
	$(GO) run ./examples/pytorchloader

fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/tfrecord/
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/recordio/
	$(GO) test -fuzz=FuzzReadAt -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzNamespace -fuzztime=30s ./internal/core/

clean:
	rm -f test_output.txt bench_output.txt
