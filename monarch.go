// Package monarch is a framework-agnostic middleware for hierarchical
// storage management for deep-learning training jobs, reproducing
// "MONARCH: Hierarchical Storage Management for Deep Learning
// Frameworks" (Dantas et al., IEEE CLUSTER 2021).
//
// MONARCH sits between a DL framework's data loader and an ordered
// hierarchy of storage backends — typically the compute node's local
// SSD above the shared parallel file system (PFS) that holds the
// dataset. A single ReadAt call replaces the framework's pread: reads
// are served from whichever tier currently holds the file, and the
// first read of each file schedules a background whole-file copy into
// the highest tier with free space. By default no evictions ever
// happen: under a single job's random once-per-epoch access pattern,
// replacement would only churn data between tiers. When several jobs
// share a tier, Config.Eviction = NewHeatPolicy(...) plus
// Config.Tenants turns on heat-driven admission/eviction with per-job
// quota shares (DESIGN.md §12).
//
// # Quick start
//
//	tier0, _ := monarch.NewOSFS("ssd", "/mnt/nvme/cache", 115<<30)
//	pfs, _ := monarch.NewOSFS("lustre", "/lustre/datasets/imagenet", 0)
//	m, _ := monarch.New(monarch.Config{
//		Levels:        []monarch.Backend{tier0, pfs},
//		Pool:          monarch.NewPool(6),
//		FullFileFetch: true,
//	})
//	defer m.Close()
//	_ = m.Init(ctx)                   // build the namespace from the PFS
//	n, err := m.ReadAt(ctx, "train.tfrecord-00001-of-01600", buf, off)
//
// The packages under internal/ additionally contain the simulation
// substrate (a deterministic discrete-event model of a Frontera-like
// compute node, Lustre, and a TensorFlow-style input pipeline) that
// regenerates every figure and table of the paper's evaluation; see
// cmd/monarch-bench and EXPERIMENTS.md.
package monarch

import (
	"time"

	"monarch/internal/core"
	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/pool"
	"monarch/internal/storage"
)

// Core middleware types, re-exported from internal/core.
type (
	// Monarch is a middleware instance; see New.
	Monarch = core.Monarch
	// Config assembles a Monarch: the storage hierarchy (last level =
	// the read-only PFS source), the placement pool, and the placement
	// policy knobs.
	Config = core.Config
	// Stats is a snapshot of middleware counters.
	Stats = core.Stats
	// StagingMode selects placement timing (on first read vs before
	// training).
	StagingMode = core.StagingMode
	// EvictionPolicy is the replacement hook: nil (the paper's
	// single-job configuration, never evict), an ablation policy
	// (NewLRU/NewFIFO), or the multi-tenant heat engine (NewHeatPolicy).
	EvictionPolicy = core.EvictionPolicy
	// HeatConfig tunes the heat-driven policy engine (NewHeatPolicy):
	// the decay half-life in epochs and the admission margin a candidate
	// must clear over the coldest resident.
	HeatConfig = core.HeatConfig
	// HeatPolicy is the heat-driven eviction/admission engine with
	// per-job quota shares; see NewHeatPolicy.
	HeatPolicy = core.HeatPolicy
	// TenantConfig declares one job's guaranteed share of every capped
	// cache tier (Config.Tenants).
	TenantConfig = core.TenantConfig
	// JobStats is one job's slice of the fairness counters
	// (Stats.Jobs).
	JobStats = core.JobStats
	// EventLog is a bounded ring of middleware events (placements,
	// skips, fallbacks) for observability; attach via Config.Events.
	EventLog = core.EventLog
	// Event is one middleware occurrence.
	Event = core.Event
	// EventKind classifies events.
	EventKind = core.EventKind
	// HealthConfig tunes the per-tier circuit breaker (Config.Health).
	HealthConfig = core.HealthConfig
	// RetryPolicy re-queues transiently failed placements
	// (Config.Retry).
	RetryPolicy = core.RetryPolicy
	// TierState is the circuit-breaker state of a hierarchy level; see
	// Monarch.TierState.
	TierState = core.TierState
	// PeerConfig mounts a hierarchy level as the peer tier — a
	// read-only view of sibling nodes' caches (Config.Peer).
	PeerConfig = core.PeerConfig
)

// Event kinds.
const (
	EventPlaced       = core.EventPlaced
	EventSkipped      = core.EventSkipped
	EventFailed       = core.EventFailed
	EventEvicted      = core.EventEvicted
	EventFallback     = core.EventFallback
	EventDemoted      = core.EventDemoted
	EventRetried      = core.EventRetried
	EventTierDown     = core.EventTierDown
	EventTierUp       = core.EventTierUp
	EventChunkPlaced  = core.EventChunkPlaced
	EventPartialHit   = core.EventPartialHit
	EventOpError      = core.EventOpError
	EventPromoted     = core.EventPromoted
	EventFlushed      = core.EventFlushed
	EventWriteStalled = core.EventWriteStalled
	EventRecovered    = core.EventRecovered
)

// Write path, re-exported from internal/core: Create/WriteAt/Remove on
// the middleware with per-path durability — write-through (the PFS has
// the bytes before the ack) or write-back (tier-0 ack, bounded dirty
// budget, background flush, crash-safe journal). See DESIGN.md §14.
type (
	// WriteConfig enables and tunes the write path (Config.Write).
	WriteConfig = core.WriteConfig
	// Durability selects how a writable file's bytes are acknowledged.
	Durability = core.Durability
)

// Durability levels for WriteConfig.Durability.
const (
	WriteThrough = core.WriteThrough
	WriteBack    = core.WriteBack
)

// Write-path sentinel errors.
var (
	// ErrWritesDisabled: Create/WriteAt/Flush/Remove without
	// Config.Write.Enabled.
	ErrWritesDisabled = core.ErrWritesDisabled
	// ErrNotWritable: a write-path call named a dataset file (or an
	// unknown one); only files registered through Create are writable.
	ErrNotWritable = core.ErrNotWritable
)

// Observability types, re-exported from internal/obs. A Monarch's
// Registry() holds every counter, gauge and histogram the middleware
// maintains; Config.MetricsAddr serves it over HTTP, and Config.Trace
// receives typed Spans from the read/placement/probe paths.
type (
	// Registry is a metrics registry (see Monarch.Registry).
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serialisable registry view.
	MetricsSnapshot = obs.Snapshot
	// Span is one completed operation on an instrumented path.
	Span = obs.Span
	// SpanKind classifies spans.
	SpanKind = obs.SpanKind
	// MetricLabel is one name/value dimension of a metric series.
	MetricLabel = obs.Label
)

// Span kinds.
const (
	SpanRead             = obs.SpanRead
	SpanPlacementEnqueue = obs.SpanPlacementEnqueue
	SpanPlacement        = obs.SpanPlacement
	SpanChunkCopy        = obs.SpanChunkCopy
	SpanTierProbe        = obs.SpanTierProbe
	SpanEvict            = obs.SpanEvict
)

// Tier circuit-breaker states.
const (
	TierHealthy = core.TierHealthy
	TierSuspect = core.TierSuspect
	TierDown    = core.TierDown
)

// NewEventLog creates an event ring holding up to capacity events.
func NewEventLog(capacity int) *EventLog { return core.NewEventLog(capacity) }

// Staging modes.
const (
	StageOnFirstRead = core.StageOnFirstRead
	StagePreTraining = core.StagePreTraining
)

// Sentinel errors.
var (
	ErrNotInitialized = core.ErrNotInitialized
	ErrUnknownFile    = core.ErrUnknownFile
)

// New validates cfg and assembles a middleware instance.
func New(cfg Config) (*Monarch, error) { return core.New(cfg) }

// NewLRU and NewFIFO build the eviction-ablation policies.
var (
	NewLRU  = core.NewLRU
	NewFIFO = core.NewFIFO
)

// NewHeatPolicy builds the heat-driven eviction/admission engine for
// multi-job tenancy: exponentially decayed per-file heat (fed by the
// read path and Monarch.MarkEpoch), margin-gated admission so uniform
// single-job access degenerates to the paper's no-eviction behaviour,
// and work-conserving per-job quota reclaim when Config.Tenants
// declares shares. See DESIGN.md §12.
func NewHeatPolicy(cfg HeatConfig) *HeatPolicy { return core.NewHeatPolicy(cfg) }

// JobFromPath is the default Config.JobOf: a file's job is its first
// slash-separated path segment ("jobA/shard-0003" → "jobA").
func JobFromPath(name string) string { return core.JobFromPath(name) }

// Storage backend types, re-exported from internal/storage.
type (
	// Backend is the flat file-store abstraction hierarchy levels wrap.
	Backend = storage.Backend
	// FileInfo describes one file of a backend namespace.
	FileInfo = storage.FileInfo
	// MemFS is an in-memory backend.
	MemFS = storage.MemFS
	// OSFS is a backend rooted at a real directory.
	OSFS = storage.OSFS
	// Counting wraps a backend with operation/byte counters.
	Counting = storage.Counting
	// RangeWriter is the optional backend extension chunked placement
	// needs (Config.ChunkSize): Allocate a file at its final size, then
	// fill it with concurrent WriteAt calls. MemFS and OSFS implement
	// it; tiers without it fall back to whole-file copies.
	RangeWriter = storage.RangeWriter
	// Pinger is the optional backend extension the circuit breaker's
	// recovery probe prefers over a write probe — read-only tiers (a
	// PeerTier) can only prove liveness this way.
	Pinger = storage.Pinger
	// View is a borrowed read-only window into a tier's bytes, the
	// zero-copy result of Monarch.ReadView. Call Release exactly once
	// after the last access to Data.
	View = storage.View
	// ViewReader is the optional backend extension behind the copy-free
	// read fast path. MemFS and OSFS implement it.
	ViewReader = storage.ViewReader
	// Releaser releases a borrowed resource such as a View.
	Releaser = storage.Releaser
)

// Backend sentinel errors.
var (
	ErrNotExist = storage.ErrNotExist
	ErrNoSpace  = storage.ErrNoSpace
	ErrReadOnly = storage.ErrReadOnly
)

// NewMemFS creates an in-memory backend (capacity 0 = unlimited).
func NewMemFS(name string, capacity int64) *MemFS { return storage.NewMemFS(name, capacity) }

// NewOSFS creates a directory-rooted backend (capacity 0 = unlimited).
func NewOSFS(name, dir string, capacity int64) (*OSFS, error) {
	return storage.NewOSFS(name, dir, capacity)
}

// NewCounting wraps a backend with I/O counters — useful for measuring
// the PFS pressure a training job produces.
func NewCounting(b Backend) *Counting { return storage.NewCounting(b) }

// Peer cache network, re-exported from internal/peernet: each node
// runs a PeerServer over its tier-0 cache (or the monarch-serve
// daemon), and mounts its siblings as a PeerTier via Config.Peer. See
// the README's two-node walkthrough and DESIGN.md §10.
type (
	// PeerServer exposes a Backend to sibling nodes over the peernet
	// wire protocol (read-only unless PeerServerConfig.AllowWrite).
	PeerServer = peernet.Server
	// PeerServerConfig configures a PeerServer.
	PeerServerConfig = peernet.ServerConfig
	// PeerClient speaks the wire protocol to one sibling and exposes
	// its cache as a Backend.
	PeerClient = peernet.Client
	// PeerClientConfig configures a PeerClient (pooling, deadlines,
	// transport retries).
	PeerClientConfig = peernet.ClientConfig
	// PeerDialer opens connections for a PeerClient.
	PeerDialer = peernet.Dialer
	// PeerRing is the consistent-hash ownership ring every node
	// derives identically from the member list.
	PeerRing = peernet.Ring
	// PeerTier aggregates sibling clients into the read-only Backend
	// that Config.Peer.Tier points at.
	PeerTier = peernet.Tier
)

// NewPeerServer validates cfg and builds a PeerServer; call Serve with
// a listener.
func NewPeerServer(cfg PeerServerConfig) (*PeerServer, error) { return peernet.NewServer(cfg) }

// NewPeerClient builds a client for one sibling. No connection is
// opened until the first request.
func NewPeerClient(cfg PeerClientConfig) (*PeerClient, error) { return peernet.NewClient(cfg) }

// NewPeerRing builds the ownership ring over the node names
// (replicas 0 = default virtual-node count).
func NewPeerRing(nodes []string, replicas int) (*PeerRing, error) {
	return peernet.NewRing(nodes, replicas)
}

// NewPeerTier aggregates clients (keyed by node name, self excluded)
// behind the ring into one read-only backend.
func NewPeerTier(name, self string, ring *PeerRing, clients map[string]*PeerClient) (*PeerTier, error) {
	return peernet.NewTier(name, self, ring, clients)
}

// PeerTCPDialer dials a sibling's monarch-serve address.
func PeerTCPDialer(addr string, timeout time.Duration) PeerDialer {
	return peernet.TCPDialer(addr, timeout)
}

// Cluster robustness, re-exported from internal/peernet: R-way
// replicated ownership, gossip membership, and hedged reads. See
// DESIGN.md §10.
type (
	// PeerTierConfig is the full-control constructor input for a
	// PeerTier: replica width, a membership view, and hedging.
	PeerTierConfig = peernet.TierConfig
	// PeerHedgeConfig tunes hedged reads against slow replicas.
	PeerHedgeConfig = peernet.HedgeConfig
	// PeerMembership is a node's gossip-maintained liveness view of
	// its ring siblings.
	PeerMembership = peernet.Membership
	// PeerMembershipConfig configures a PeerMembership (timeouts,
	// transition callback).
	PeerMembershipConfig = peernet.MembershipConfig
	// PeerHeartbeater drives the gossip exchange over the sibling
	// clients; Start it after wiring, Stop it on shutdown.
	PeerHeartbeater = peernet.Heartbeater
	// PeerState is a sibling's liveness as seen locally.
	PeerState = peernet.PeerState
	// PeerHeartbeatEntry is one gossiped view entry (peer name + age
	// of the freshest reachability evidence).
	PeerHeartbeatEntry = peernet.HeartbeatEntry
)

// Liveness states a PeerMembership reports.
const (
	PeerAlive   = peernet.PeerAlive
	PeerSuspect = peernet.PeerSuspect
	PeerDead    = peernet.PeerDead
)

// ErrPeerClientClosed is returned by every operation on a closed
// PeerClient (in-flight requests fail fast rather than waiting out
// their deadlines).
var ErrPeerClientClosed = peernet.ErrClientClosed

// NewPeerTierWithConfig builds a PeerTier with replication, an
// optional membership view, and optional hedged reads. NewPeerTier is
// the R=1 shorthand.
func NewPeerTierWithConfig(cfg PeerTierConfig) (*PeerTier, error) {
	return peernet.NewTierWithConfig(cfg)
}

// NewPeerMembership builds the liveness view for a node; feed it to
// both the PeerServer (so inbound heartbeats merge) and the
// PeerTier/PeerHeartbeater.
func NewPeerMembership(cfg PeerMembershipConfig) (*PeerMembership, error) {
	return peernet.NewMembership(cfg)
}

// NewPeerHeartbeater builds the gossip loop over the same per-sibling
// clients the tier reads through; interval <= 0 defaults to 250ms.
func NewPeerHeartbeater(mem *PeerMembership, clients map[string]*PeerClient, interval time.Duration) (*PeerHeartbeater, error) {
	return peernet.NewHeartbeater(mem, clients, interval)
}

// Pool is the background placement executor interface.
type Pool = pool.Executor

// NewPool starts a goroutine-backed placement pool with n workers (the
// paper uses 6).
func NewPool(n int) Pool { return pool.NewGoPool(n) }
