module monarch

go 1.24
